//! Multi-objective flow-parameter exploration with NSGA-II (§III-D).
//!
//! The Table-I parameter space is encoded as a 13-gene chromosome
//! (`op_select`, `LDA::N`, `LDA::n_iter`, ten `RWS::scale_M[i]` genes).
//! Fitness follows the paper: solutions must first satisfy the hard DRC and
//! power constraints of §II-C (constrained domination à la Deb), then
//! better `(Security, −TNS)` prevails under Pareto domination with
//! crowding-distance diversity. Evaluations are cached per chromosome and
//! run in parallel across worker threads, mirroring the paper's
//! process-level parallelism.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tech::{RouteRule, Technology, NUM_METAL_LAYERS};

use crate::checkpoint::{fingerprint, hex64, Checkpoint};
use crate::error::Error;
use crate::flow::{FlowConfig, FlowMetrics, OpSelect};
use crate::lda::LdaParams;
use crate::pipeline::{EvalEngine, Snapshot};
use crate::sandbox::{evaluate_candidate, sandbox_metrics, EvalStatus, SandboxPolicy};

/// Chromosome over the Table-I space, stored as candidate indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Genome {
    /// 0 = Cell Shift, 1 = LDA.
    pub op: u8,
    /// Index into [`LdaParams::N_CANDIDATES`].
    pub n_idx: u8,
    /// Index into [`LdaParams::ITER_CANDIDATES`].
    pub iter_idx: u8,
    /// Index into [`RouteRule::CANDIDATES`] per metal layer.
    pub scale_idx: [u8; NUM_METAL_LAYERS],
}

impl Genome {
    /// Decodes the chromosome into a flow configuration.
    pub fn to_config(self) -> FlowConfig {
        let op = if self.op == 0 {
            OpSelect::CellShift
        } else {
            OpSelect::Lda {
                n: LdaParams::N_CANDIDATES[self.n_idx as usize],
                n_iter: LdaParams::ITER_CANDIDATES[self.iter_idx as usize],
            }
        };
        let mut scales = [1.0; NUM_METAL_LAYERS];
        for (i, s) in scales.iter_mut().enumerate() {
            *s = RouteRule::CANDIDATES[self.scale_idx[i] as usize];
        }
        FlowConfig { op, scales }
    }

    /// Uniformly random chromosome.
    pub fn random(rng: &mut StdRng) -> Self {
        let mut scale_idx = [0u8; NUM_METAL_LAYERS];
        for s in &mut scale_idx {
            *s = rng.gen_range(0..RouteRule::CANDIDATES.len() as u8);
        }
        Self {
            op: rng.gen_range(0..2),
            n_idx: rng.gen_range(0..LdaParams::N_CANDIDATES.len() as u8),
            iter_idx: rng.gen_range(0..LdaParams::ITER_CANDIDATES.len() as u8),
            scale_idx,
        }
    }

    /// Uniform crossover.
    pub fn crossover(a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
        let pick = |rng: &mut StdRng, x: u8, y: u8| if rng.gen_bool(0.5) { x } else { y };
        let mut scale_idx = [0u8; NUM_METAL_LAYERS];
        for (i, s) in scale_idx.iter_mut().enumerate() {
            *s = pick(rng, a.scale_idx[i], b.scale_idx[i]);
        }
        Genome {
            op: pick(rng, a.op, b.op),
            n_idx: pick(rng, a.n_idx, b.n_idx),
            iter_idx: pick(rng, a.iter_idx, b.iter_idx),
            scale_idx,
        }
    }

    /// Per-gene categorical mutation with probability `p`.
    pub fn mutate(&mut self, rng: &mut StdRng, p: f64) {
        if rng.gen_bool(p) {
            self.op = rng.gen_range(0..2);
        }
        if rng.gen_bool(p) {
            self.n_idx = rng.gen_range(0..LdaParams::N_CANDIDATES.len() as u8);
        }
        if rng.gen_bool(p) {
            self.iter_idx = rng.gen_range(0..LdaParams::ITER_CANDIDATES.len() as u8);
        }
        for s in &mut self.scale_idx {
            if rng.gen_bool(p) {
                *s = rng.gen_range(0..RouteRule::CANDIDATES.len() as u8);
            }
        }
    }

    /// A deterministic seed for the flow's internal RNG, derived from the
    /// *operator* genes only. The seed feeds the ECO placement operator,
    /// which runs before width scaling — deriving it from the scale genes
    /// too would make a scale-only mutation re-roll the placement edit,
    /// entangling the two halves of the search space (and defeating the
    /// [`crate::pipeline::EvalEngine`] operator memoization).
    pub fn flow_seed(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (self.op, self.n_idx, self.iter_idx).hash(&mut h);
        h.finish()
    }

    /// A total-order sort key over the full chromosome, used to
    /// deterministically order and deduplicate genome lists ([`flow_seed`]
    /// collides for genomes sharing operator genes, so it cannot serve).
    fn sort_key(&self) -> (u8, u8, u8, [u8; NUM_METAL_LAYERS]) {
        (self.op, self.n_idx, self.iter_idx, self.scale_idx)
    }
}

ggjson::json_struct!(Genome {
    op,
    n_idx,
    iter_idx,
    scale_idx
});

/// NSGA-II hyper-parameters.
///
/// Construct with [`Nsga2Params::builder`] — the builder is `const`, so
/// shared presets can live in `const` items without spelling out every
/// field (and without breaking when a field is added).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Params {
    /// Population size.
    pub population: usize,
    /// Number of generations after the initial population.
    pub generations: usize,
    /// Crossover probability (else clone a parent).
    pub crossover_p: f64,
    /// Per-gene mutation probability.
    pub mutation_p: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for parallel flow evaluation; 0 means "one per
    /// available hardware thread", resolved at [`explore`] time.
    pub threads: usize,
}

impl Nsga2Params {
    /// Starts a builder pre-loaded with the default parameters
    /// (population 16, 6 generations, crossover 0.9, mutation 0.15,
    /// seed `0x65A2`, auto thread count).
    pub const fn builder() -> Nsga2ParamsBuilder {
        Nsga2ParamsBuilder {
            params: Nsga2Params {
                population: 16,
                generations: 6,
                crossover_p: 0.9,
                mutation_p: 0.15,
                seed: 0x65A2,
                threads: 0,
            },
        }
    }

    /// The worker count [`explore`] will actually use: an explicit
    /// `threads`, or the machine's available parallelism when 0.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for Nsga2Params {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            ..Nsga2Params::builder().build()
        }
    }
}

/// `const`-friendly builder for [`Nsga2Params`].
///
/// ```
/// use gdsii_guard::Nsga2Params;
/// const PRESET: Nsga2Params = Nsga2Params::builder()
///     .population(24)
///     .generations(128)
///     .seed(0x6D51)
///     .build();
/// assert_eq!(PRESET.crossover_p, 0.9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Nsga2ParamsBuilder {
    params: Nsga2Params,
}

impl Nsga2ParamsBuilder {
    /// Sets the population size.
    pub const fn population(mut self, population: usize) -> Self {
        self.params.population = population;
        self
    }

    /// Sets the number of generations after the initial population.
    pub const fn generations(mut self, generations: usize) -> Self {
        self.params.generations = generations;
        self
    }

    /// Sets the crossover probability.
    pub const fn crossover_p(mut self, p: f64) -> Self {
        self.params.crossover_p = p;
        self
    }

    /// Sets the per-gene mutation probability.
    pub const fn mutation_p(mut self, p: f64) -> Self {
        self.params.mutation_p = p;
        self
    }

    /// Sets the RNG seed.
    pub const fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Sets the evaluation worker count (0 = auto).
    pub const fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Finalizes the parameters.
    pub const fn build(self) -> Nsga2Params {
        self.params
    }
}

ggjson::json_struct!(Nsga2Params {
    population,
    generations,
    crossover_p,
    mutation_p,
    seed,
    threads
});

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct EvalPoint {
    /// The chromosome.
    pub genome: Genome,
    /// Decoded configuration.
    pub config: FlowConfig,
    /// Measured metrics.
    pub metrics: FlowMetrics,
    /// Generation at which the point was first evaluated (0 = initial).
    pub generation: usize,
}

ggjson::json_struct!(EvalPoint {
    genome,
    config,
    metrics,
    generation
});

/// One quarantined candidate: it failed both the incremental and the full
/// re-eval stage of the degrade chain and carries penalty metrics in the
/// archive (see [`crate::sandbox`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The offending chromosome.
    pub genome: Genome,
    /// The generation whose evaluation quarantined it.
    pub generation: usize,
    /// The rendered stage-0 (incremental) failure.
    pub incremental: String,
    /// The rendered stage-1 (full re-eval) failure.
    pub full: String,
}

ggjson::json_struct!(QuarantineEntry {
    genome,
    generation,
    incremental,
    full
});

/// Full exploration trace plus the data needed to judge feasibility.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Every unique evaluated point, in evaluation order.
    pub points: Vec<EvalPoint>,
    /// Baseline power, the reference for the power constraint.
    pub base_power_mw: f64,
    /// Baseline DRC count, the reference for the DRC constraint.
    pub base_drc: u32,
    /// Baseline TNS in ps, for plotting the trade-off origin.
    pub base_tns_ps: f64,
    /// Candidates that exhausted the degrade chain (empty on healthy runs;
    /// their penalty-metric points are infeasible and never reach the
    /// Pareto front).
    pub quarantined: Vec<QuarantineEntry>,
}

ggjson::json_struct!(ExploreResult {
    points,
    base_power_mw,
    base_drc,
    base_tns_ps,
    quarantined
});

impl ExploreResult {
    /// The feasible, non-dominated subset of all evaluated points
    /// (the explored Pareto front of Fig. 5).
    pub fn pareto_front(&self) -> Vec<&EvalPoint> {
        let feasible: Vec<&EvalPoint> = self
            .points
            .iter()
            .filter(|p| p.metrics.feasible(self.base_power_mw, self.base_drc))
            .collect();
        feasible
            .iter()
            .filter(|a| {
                !feasible
                    .iter()
                    .any(|b| dominates(&b.metrics.objectives(), &a.metrics.objectives()))
            })
            .copied()
            .collect()
    }

    /// Dominated 2-D hypervolume of the explored Pareto front with
    /// respect to a reference point, on the minimization objectives
    /// `(Security, −TNS)`. Points not strictly better than the reference
    /// in both objectives contribute nothing; an empty front scores 0.
    /// Bigger is better — more of the trade-off plane is dominated.
    pub fn hypervolume(&self, reference: [f64; 2]) -> f64 {
        hypervolume_2d(
            self.pareto_front()
                .iter()
                .map(|p| p.metrics.objectives())
                .collect(),
            reference,
        )
    }

    /// The reference point [`Self::hypervolume`] wants when no external
    /// one is given: the feasible nadir (componentwise worst) nudged 5 %
    /// of the objective span outward, so every feasible point — including
    /// the nadir itself — dominates it and contributes volume. `None` if
    /// no point is feasible.
    pub fn nadir_reference(&self) -> Option<[f64; 2]> {
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        let mut any = false;
        for p in &self.points {
            if !p.metrics.feasible(self.base_power_mw, self.base_drc) {
                continue;
            }
            any = true;
            let o = p.metrics.objectives();
            for k in 0..2 {
                lo[k] = lo[k].min(o[k]);
                hi[k] = hi[k].max(o[k]);
            }
        }
        any.then(|| {
            [0, 1].map(|k| {
                let span = (hi[k] - lo[k]).max(1.0);
                hi[k] + 0.05 * span
            })
        })
    }
}

/// The 2-D sweep behind [`ExploreResult::hypervolume`]: sort the
/// (mutually non-dominated) points ascending in the first objective, then
/// stack one slab per point — width to the next point's first coordinate
/// (the reference for the last), height up to the reference.
fn hypervolume_2d(points: Vec<[f64; 2]>, r: [f64; 2]) -> f64 {
    let mut pts: Vec<[f64; 2]> = points
        .into_iter()
        .filter(|o| o[0] < r[0] && o[1] < r[1])
        .collect();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    let mut hv = 0.0;
    for (i, p) in pts.iter().enumerate() {
        let next0 = pts.get(i + 1).map_or(r[0], |q| q[0]);
        hv += (r[1] - p[1]) * (next0 - p[0]);
    }
    hv
}

/// Plain Pareto domination on minimization objectives.
fn dominates(a: &[f64; 2], b: &[f64; 2]) -> bool {
    a[0] <= b[0] && a[1] <= b[1] && (a[0] < b[0] || a[1] < b[1])
}

/// Constrained domination (Deb): feasibility first, then violation, then
/// Pareto domination.
fn constrained_dominates(a: &FlowMetrics, b: &FlowMetrics, base_power: f64, base_drc: u32) -> bool {
    let (cva, cvb) = (
        a.constraint_violation(base_power, base_drc),
        b.constraint_violation(base_power, base_drc),
    );
    match (cva == 0.0, cvb == 0.0) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => cva < cvb,
        (true, true) => dominates(&a.objectives(), &b.objectives()),
    }
}

/// Fast non-dominated sort; returns the front index of each individual.
fn non_dominated_sort(metrics: &[FlowMetrics], base_power: f64, base_drc: u32) -> Vec<usize> {
    let n = metrics.len();
    let mut dominated_by = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && constrained_dominates(&metrics[i], &metrics[j], base_power, base_drc) {
                dominates_list[i].push(j);
                dominated_by[j] += 1;
            }
        }
    }
    let mut rank = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut r = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = r;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        r += 1;
    }
    rank
}

/// Crowding distance within one front (indices into `metrics`).
fn crowding_distance(front: &[usize], metrics: &[FlowMetrics]) -> HashMap<usize, f64> {
    let mut dist: HashMap<usize, f64> = front.iter().map(|&i| (i, 0.0)).collect();
    for obj in 0..2 {
        let mut sorted: Vec<usize> = front.to_vec();
        // total_cmp: objectives are finite by construction (quarantined
        // candidates get finite penalty values), but a total order costs
        // nothing and removes the panic edge entirely.
        sorted.sort_by(|&a, &b| {
            metrics[a].objectives()[obj].total_cmp(&metrics[b].objectives()[obj])
        });
        let lo = metrics[sorted[0]].objectives()[obj];
        let hi = metrics[*sorted.last().expect("front non-empty")].objectives()[obj];
        *dist.get_mut(&sorted[0]).expect("present") = f64::INFINITY;
        *dist
            .get_mut(sorted.last().expect("non-empty"))
            .expect("present") = f64::INFINITY;
        if hi - lo <= f64::EPSILON {
            continue;
        }
        for w in sorted.windows(3) {
            let d = (metrics[w[2]].objectives()[obj] - metrics[w[0]].objectives()[obj]) / (hi - lo);
            *dist.get_mut(&w[1]).expect("present") += d;
        }
    }
    dist
}

/// Evaluates genomes against the cache, running misses in parallel, each
/// inside the evaluation sandbox (see [`crate::sandbox`]).
///
/// Work distribution is a shared atomic-index queue rather than static
/// chunks: each worker repeatedly claims the next un-evaluated genome, so a
/// handful of slow candidates (deep rip-up-and-reroute, many LDA
/// iterations) cannot idle the rest of the pool. A worker that panics no
/// longer poisons the join: the sandbox catches the unwind, attaches the
/// offending genome, and walks the degrade chain, so the scope always exits
/// cleanly and `cache` gains an entry for every requested genome.
///
/// Candidate indices for the fault-trigger context are positions in the
/// sorted-deduplicated miss list — deterministic at any thread count.
#[allow(clippy::too_many_arguments)]
fn evaluate_all(
    genomes: &[Genome],
    engine: &EvalEngine,
    tech: &Technology,
    cache: &mut HashMap<Genome, FlowMetrics>,
    threads: usize,
    generation: usize,
    policy: &SandboxPolicy,
    ledger: &mut Vec<QuarantineEntry>,
) {
    let mut missing: Vec<Genome> = genomes
        .iter()
        .copied()
        .filter(|g| !cache.contains_key(g))
        .collect();
    missing.sort_by_key(Genome::sort_key);
    missing.dedup();
    ga_metrics()
        .genome_cache_hits
        .add((genomes.len() - missing.len()) as u64);
    if missing.is_empty() {
        return;
    }
    ga_metrics().evaluations.add(missing.len() as u64);
    let threads = threads.max(1).min(missing.len());
    obs::span("nsga2.evaluate", |_| {
        // Candidate-level and region-level parallelism compose: with
        // `threads` candidate workers running concurrently, each router call
        // gets an even share of the machine instead of oversubscribing it
        // `threads`-fold. Routing results are bit-identical at any budget, so
        // this only shapes scheduling, never the Pareto front.
        route::set_parallelism(route::budget_for_workers(threads));
        let next = AtomicUsize::new(0);
        type Outcome = (usize, Genome, FlowMetrics, EvalStatus);
        let done: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(missing.len()));
        let missing = &missing;
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(g) = missing.get(i) else { break };
            let (m, status) = evaluate_candidate(engine, tech, g, generation, i, policy);
            // Sandboxed workers cannot panic while holding this
            // lock, but recover from poison anyway: the data is a
            // plain Vec push, valid at every intermediate state.
            done.lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((i, *g, m, status));
        };
        if threads == 1 {
            // Single-worker generations run on the calling thread: the
            // maze and STA scratch areas are thread-locals, so spawning a
            // fresh scope thread per generation would start every
            // generation with cold scratch (and abandon the warm one) —
            // measured at ~10% of the serial evaluation wall.
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }
        route::set_parallelism(0);
        let mut results = done.into_inner().unwrap_or_else(|p| p.into_inner());
        // Candidate order, so the quarantine ledger (and therefore the
        // checkpoint bytes) never depend on thread scheduling.
        results.sort_by_key(|(i, ..)| *i);
        for (_, g, m, status) in results {
            match status {
                EvalStatus::Ok => {}
                EvalStatus::Degraded(failure) => {
                    sandbox_metrics().degraded.incr();
                    obs::diagln!(
                        "nsga2: candidate {g:?} (gen {generation}) degraded to full re-eval: \
                         {failure}"
                    );
                }
                EvalStatus::Quarantined { incremental, full } => {
                    sandbox_metrics().quarantined.incr();
                    obs::diagln!(
                        "nsga2: candidate {g:?} (gen {generation}) quarantined: \
                         incremental eval {incremental}; full re-eval {full}"
                    );
                    ledger.push(QuarantineEntry {
                        genome: g,
                        generation,
                        incremental: incremental.to_string(),
                        full: full.to_string(),
                    });
                }
            }
            cache.insert(g, m);
        }
    });
}

/// Registry handles for the exploration loop, resolved once.
struct GaMetrics {
    evaluations: obs::Counter,
    genome_cache_hits: obs::Counter,
    generations: obs::Counter,
}

fn ga_metrics() -> &'static GaMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<GaMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GaMetrics {
        evaluations: obs::counter("nsga2.evaluations"),
        genome_cache_hits: obs::counter("nsga2.genome_cache_hits"),
        generations: obs::counter("nsga2.generations"),
    })
}

/// Binary tournament by `(rank, crowding)`.
fn tournament(
    rng: &mut StdRng,
    pop: &[Genome],
    rank: &[usize],
    crowd: &HashMap<usize, f64>,
) -> Genome {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    let better = if rank[a] != rank[b] {
        if rank[a] < rank[b] {
            a
        } else {
            b
        }
    } else {
        let (ca, cb) = (
            crowd.get(&a).copied().unwrap_or(0.0),
            crowd.get(&b).copied().unwrap_or(0.0),
        );
        if ca >= cb {
            a
        } else {
            b
        }
    };
    pop[better]
}

/// Where and how [`explore_with`] persists and resumes its state.
#[derive(Debug, Clone, Default)]
pub struct ExploreOptions {
    /// Checkpoint file path; `None` disables checkpointing entirely.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` when it exists (a missing file starts a
    /// fresh run; a present-but-incompatible one is a typed error).
    pub resume: bool,
    /// Stop after checkpointing this completed generation (0 = the initial
    /// population) and return the partial result: the kill-simulation hook
    /// the resume-matrix test and CI drill use to interrupt a run at an
    /// exact, deterministic point.
    pub halt_after: Option<usize>,
    /// Cooperative per-candidate wall-clock budget (see
    /// [`crate::sandbox::SandboxPolicy`]).
    pub deadline: Option<Duration>,
}

impl ExploreOptions {
    /// Environment-driven options for binaries: `GG_CHECKPOINT` (path)
    /// and `GG_EVAL_DEADLINE_MS`.
    pub fn from_env() -> Self {
        Self {
            checkpoint: std::env::var("GG_CHECKPOINT").ok().map(PathBuf::from),
            resume: false,
            halt_after: None,
            deadline: SandboxPolicy::from_env().deadline,
        }
    }
}

/// Runs the NSGA-II exploration over the flow parameter space.
///
/// Returns every evaluated point; use [`ExploreResult::pareto_front`] for
/// the final trade-off set. Equivalent to [`explore_with`] with default
/// [`ExploreOptions`] (no checkpointing, no deadline), which cannot fail.
pub fn explore(base: &Snapshot, tech: &Technology, params: &Nsga2Params) -> ExploreResult {
    explore_with(base, tech, params, &ExploreOptions::default())
        .expect("explore without checkpointing has no error path")
}

/// [`explore`] with checkpoint/resume and sandbox policy control.
///
/// With a checkpoint configured, the full loop state is atomically
/// persisted after every completed generation; a later call with
/// `resume: true` continues from the last completed generation and
/// produces a result bit-identical to an uninterrupted run (quarantine
/// decisions are keyed on `(genome, seed)`, so this holds under armed
/// fault specs too — but not under wall-clock `deadline`s).
pub fn explore_with(
    base: &Snapshot,
    tech: &Technology,
    params: &Nsga2Params,
    opts: &ExploreOptions,
) -> Result<ExploreResult, Error> {
    // One incremental-evaluation engine, shared read-only by all workers:
    // the baseline route plan, levelized timing graph, and power model are
    // built once here instead of once per candidate.
    let engine = EvalEngine::new(base, tech);
    explore_with_engine(&engine, tech, params, opts)
}

/// [`explore_with`] against a caller-owned [`EvalEngine`].
///
/// The scheduling hook of the `ggd serve` job daemon
/// ([`crate::serve`]): a long-lived server keeps one engine per design and
/// drives many (possibly interleaved, generation-stepped) explorations
/// through it, so the baseline build is paid once per design and the
/// engine's `(operator, seed)` edit and metrics memos are shared *across
/// jobs*. Sharing is safe for bit-identity: a memo hit returns the
/// provably identical result of recomputing (pinned by the
/// incremental-equivalence suite), so results never depend on which jobs
/// warmed the cache. The baseline snapshot is [`EvalEngine::base`].
pub fn explore_with_engine(
    engine: &EvalEngine,
    tech: &Technology,
    params: &Nsga2Params,
    opts: &ExploreOptions,
) -> Result<ExploreResult, Error> {
    faults::ensure_init();
    let base = engine.base();
    let policy = SandboxPolicy {
        deadline: opts.deadline,
    };
    let threads = params.resolved_threads();

    let mut rng;
    let mut cache: HashMap<Genome, FlowMetrics> = HashMap::new();
    let mut order: Vec<(Genome, usize)> = Vec::new();
    let mut ledger: Vec<QuarantineEntry> = Vec::new();
    let mut pop: Vec<Genome>;
    let start_gen;
    // Adaptive checkpoint cadence: a generation is persisted only while
    // the cumulative write wall (plus the projected cost of the next
    // write, estimated from the previous one) stays within `CKPT_BUDGET`
    // of the explore wall so far. Skipping a write never affects results
    // — resuming from an older checkpoint deterministically re-runs the
    // missing generations — so only `halt_after` (the kill switch the
    // resume matrix exercises) forces a write past the budget.
    const CKPT_BUDGET: f64 = 0.02;
    let explore_start = Instant::now();
    let mut ckpt_spent = 0.0f64;
    let mut ckpt_cost = 0.0f64;
    // Entries in the eval cache at the last write: the write cost is
    // dominated by rendering the cache, so the projected cost of the next
    // write is the last cost scaled by how much the cache has grown.
    let mut ckpt_entries = 1usize;

    let resumed: Option<Checkpoint> = match (&opts.checkpoint, opts.resume) {
        (Some(path), true) if path.exists() || crate::checkpoint::prev_path(path).exists() => {
            // A corrupt primary degrades to the `.prev` last-good
            // envelope instead of erroring the run (the skipped
            // generation re-runs deterministically).
            let (cp, _recovered) = Checkpoint::load_with_fallback(path)?;
            cp.verify(base, params)?;
            Some(cp)
        }
        _ => None,
    };
    match resumed {
        Some(cp) => {
            rng = StdRng::from_state(cp.rng_state()?);
            cache.extend(cp.cache.iter().copied());
            order = cp.order.clone();
            ledger = cp.quarantine.clone();
            pop = cp.pop.clone();
            start_gen = cp.generation + 1;
            obs::diagln!(
                "nsga2: resumed from checkpoint at generation {} ({} evaluated, {} quarantined)",
                cp.generation,
                order.len(),
                ledger.len()
            );
        }
        None => {
            rng = StdRng::seed_from_u64(params.seed);
            // Initial population: the two canonical operators plus random
            // samples.
            pop = Vec::with_capacity(params.population);
            pop.push(Genome {
                op: 0,
                n_idx: 0,
                iter_idx: 0,
                scale_idx: [0; NUM_METAL_LAYERS],
            });
            pop.push(Genome {
                op: 1,
                n_idx: 2,
                iter_idx: 0,
                scale_idx: [0; NUM_METAL_LAYERS],
            });
            while pop.len() < params.population {
                pop.push(Genome::random(&mut rng));
            }
            obs::span("nsga2.generation", |_| {
                evaluate_all(
                    &pop,
                    engine,
                    tech,
                    &mut cache,
                    threads,
                    0,
                    &policy,
                    &mut ledger,
                );
            });
            ga_metrics().generations.incr();
            for g in &pop {
                if !order.iter().any(|(og, _)| og == g) {
                    order.push((*g, 0));
                }
            }
            start_gen = 1;
            if let Some(path) = &opts.checkpoint {
                let t = Instant::now();
                save_checkpoint(path, base, params, 0, &rng, &pop, &order, &cache, &ledger)?;
                ckpt_cost = t.elapsed().as_secs_f64();
                ckpt_spent += ckpt_cost;
                ckpt_entries = cache.len().max(1);
            }
        }
    }

    if opts.halt_after.is_some_and(|h| h < start_gen) {
        return Ok(build_result(base, order, &cache, ledger));
    }

    for generation in start_gen..=params.generations {
        obs::span("nsga2.generation", |_| {
            // Parent selection state.
            let metrics: Vec<FlowMetrics> = pop.iter().map(|g| cache[g]).collect();
            let rank = non_dominated_sort(&metrics, base.power_mw(), base.drc);
            let all: Vec<usize> = (0..pop.len()).collect();
            let crowd = crowding_distance(&all, &metrics);

            // Offspring.
            let mut offspring: Vec<Genome> = Vec::with_capacity(params.population);
            while offspring.len() < params.population {
                let p1 = tournament(&mut rng, &pop, &rank, &crowd);
                let p2 = tournament(&mut rng, &pop, &rank, &crowd);
                let mut child = if rng.gen_bool(params.crossover_p) {
                    Genome::crossover(&p1, &p2, &mut rng)
                } else {
                    p1
                };
                child.mutate(&mut rng, params.mutation_p);
                offspring.push(child);
            }
            evaluate_all(
                &offspring,
                engine,
                tech,
                &mut cache,
                threads,
                generation,
                &policy,
                &mut ledger,
            );
            for g in &offspring {
                if !order.iter().any(|(og, _)| og == g) {
                    order.push((*g, generation));
                }
            }

            // Environmental selection over the union.
            let mut union: Vec<Genome> = pop.iter().chain(offspring.iter()).copied().collect();
            union.sort_by_key(Genome::sort_key);
            union.dedup();
            let union_metrics: Vec<FlowMetrics> = union.iter().map(|g| cache[g]).collect();
            let union_rank = non_dominated_sort(&union_metrics, base.power_mw(), base.drc);
            let max_rank = union_rank.iter().copied().max().unwrap_or(0);
            let mut next: Vec<Genome> = Vec::with_capacity(params.population);
            for r in 0..=max_rank {
                let front: Vec<usize> = (0..union.len()).filter(|&i| union_rank[i] == r).collect();
                if next.len() + front.len() <= params.population {
                    next.extend(front.iter().map(|&i| union[i]));
                } else {
                    let crowd = crowding_distance(&front, &union_metrics);
                    let mut by_crowd = front.clone();
                    by_crowd.sort_by(|a, b| crowd[b].total_cmp(&crowd[a]));
                    for &i in by_crowd.iter().take(params.population - next.len()) {
                        next.push(union[i]);
                    }
                    break;
                }
                if next.len() == params.population {
                    break;
                }
            }
            // Top up if deduplication shrank the union below the population.
            while next.len() < params.population {
                next.push(Genome::random(&mut rng));
            }
            evaluate_all(
                &next,
                engine,
                tech,
                &mut cache,
                threads,
                generation,
                &policy,
                &mut ledger,
            );
            for g in &next {
                if !order.iter().any(|(og, _)| og == g) {
                    order.push((*g, generation));
                }
            }
            pop = next;
        });
        ga_metrics().generations.incr();
        if let Some(path) = &opts.checkpoint {
            let force = opts.halt_after == Some(generation);
            let projected = ckpt_cost * cache.len() as f64 / ckpt_entries as f64;
            let within_budget =
                ckpt_spent + projected <= CKPT_BUDGET * explore_start.elapsed().as_secs_f64();
            if force || within_budget {
                let t = Instant::now();
                save_checkpoint(
                    path, base, params, generation, &rng, &pop, &order, &cache, &ledger,
                )?;
                ckpt_cost = t.elapsed().as_secs_f64();
                ckpt_spent += ckpt_cost;
                ckpt_entries = cache.len().max(1);
            }
        }
        if opts.halt_after == Some(generation) {
            break;
        }
    }

    Ok(build_result(base, order, &cache, ledger))
}

/// Assembles the result from the evaluation archive.
fn build_result(
    base: &Snapshot,
    order: Vec<(Genome, usize)>,
    cache: &HashMap<Genome, FlowMetrics>,
    ledger: Vec<QuarantineEntry>,
) -> ExploreResult {
    let points = order
        .into_iter()
        .map(|(genome, generation)| EvalPoint {
            genome,
            config: genome.to_config(),
            metrics: cache[&genome],
            generation,
        })
        .collect();
    ExploreResult {
        points,
        base_power_mw: base.power_mw(),
        base_drc: base.drc,
        base_tns_ps: base.tns_ps(),
        quarantined: ledger,
    }
}

/// Persists the loop state after `generation` completed generations.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    path: &std::path::Path,
    base: &Snapshot,
    params: &Nsga2Params,
    generation: usize,
    rng: &StdRng,
    pop: &[Genome],
    order: &[(Genome, usize)],
    cache: &HashMap<Genome, FlowMetrics>,
    ledger: &[QuarantineEntry],
) -> Result<(), Error> {
    let mut cache_vec: Vec<(Genome, FlowMetrics)> = cache.iter().map(|(g, m)| (*g, *m)).collect();
    // HashMap iteration order is nondeterministic; sort so the checkpoint
    // bytes are a pure function of the run state.
    cache_vec.sort_by_key(|(g, _)| g.sort_key());
    Checkpoint {
        base_fingerprint: fingerprint(base),
        params: *params,
        generation,
        rng: rng.state().iter().map(|&w| hex64(w)).collect(),
        pop: pop.to_vec(),
        order: order.to_vec(),
        cache: cache_vec,
        quarantine: ledger.to_vec(),
    }
    .save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::implement_baseline;
    use netlist::bench;

    fn m(sec: f64, tns: f64, drc: u32, power: f64) -> FlowMetrics {
        FlowMetrics {
            security: sec,
            er_sites: 0,
            er_tracks: 0.0,
            tns_ps: tns,
            power_mw: power,
            drc,
        }
    }

    #[test]
    fn domination_rules() {
        assert!(dominates(&[0.1, 5.0], &[0.2, 6.0]));
        assert!(dominates(&[0.1, 5.0], &[0.1, 6.0]));
        assert!(!dominates(&[0.1, 5.0], &[0.1, 5.0]));
        assert!(!dominates(&[0.1, 7.0], &[0.2, 6.0]));
    }

    #[test]
    fn constrained_domination_prefers_feasible() {
        let feas = m(0.9, -100.0, 0, 1.0);
        let infeas = m(0.01, 0.0, 100, 1.0);
        assert!(constrained_dominates(&feas, &infeas, 1.0, 0));
        assert!(!constrained_dominates(&infeas, &feas, 1.0, 0));
        // Between two infeasible points the lesser violation wins.
        let worse = m(0.01, 0.0, 200, 1.0);
        assert!(constrained_dominates(&infeas, &worse, 1.0, 0));
    }

    #[test]
    fn sort_ranks_are_consistent() {
        let ms = vec![
            m(0.1, -10.0, 0, 1.0),
            m(0.2, -20.0, 0, 1.0), // dominated by the first
            m(0.05, -30.0, 0, 1.0),
        ];
        let rank = non_dominated_sort(&ms, 1.0, 0);
        assert_eq!(rank[0], 0);
        assert_eq!(rank[2], 0);
        assert_eq!(rank[1], 1);
    }

    #[test]
    fn crowding_boundary_points_are_infinite() {
        // The extremes of every objective must carry infinite crowding
        // distance so truncation can never drop the front's boundary
        // solutions (Deb et al. 2002, §III-C).
        let ms = vec![
            m(0.1, -10.0, 0, 1.0),
            m(0.4, -40.0, 0, 1.0),
            m(0.6, -60.0, 0, 1.0),
            m(0.9, -90.0, 0, 1.0),
        ];
        let front: Vec<usize> = (0..ms.len()).collect();
        let d = crowding_distance(&front, &ms);
        assert_eq!(d[&0], f64::INFINITY);
        assert_eq!(d[&3], f64::INFINITY);
        for i in [1usize, 2] {
            assert!(d[&i].is_finite(), "interior point {i} got {}", d[&i]);
            assert!(d[&i] > 0.0);
        }
        // Degenerate fronts (one or two points) are all boundary.
        let d2 = crowding_distance(&[0, 1], &ms);
        assert_eq!(d2[&0], f64::INFINITY);
        assert_eq!(d2[&1], f64::INFINITY);
        let d1 = crowding_distance(&[2], &ms);
        assert_eq!(d1[&2], f64::INFINITY);
    }

    #[test]
    fn genome_round_trip_and_mutation_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut g = Genome::random(&mut rng);
            g.mutate(&mut rng, 0.5);
            let cfg = g.to_config();
            for s in cfg.scales {
                assert!(RouteRule::CANDIDATES.contains(&s));
            }
            if let OpSelect::Lda { n, n_iter } = cfg.op {
                assert!(LdaParams::N_CANDIDATES.contains(&n));
                assert!(LdaParams::ITER_CANDIDATES.contains(&n_iter));
            }
        }
    }

    #[test]
    fn builder_matches_defaults_and_resolves_threads() {
        const P: Nsga2Params = Nsga2Params::builder().population(24).build();
        assert_eq!(P.population, 24);
        assert_eq!(P.threads, 0, "builder leaves threads on auto");
        assert!(P.resolved_threads() >= 1);
        let d = Nsga2Params::default();
        assert_eq!(d.generations, P.generations);
        assert_eq!(d.crossover_p, P.crossover_p);
        assert_eq!(d.mutation_p, P.mutation_p);
        assert_eq!(d.seed, P.seed);
    }

    #[test]
    fn explore_finds_a_nonempty_pareto_front() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let params = Nsga2Params {
            population: 6,
            generations: 2,
            threads: 2,
            ..Nsga2Params::default()
        };
        let result = explore(&base, &tech, &params);
        assert!(result.points.len() >= params.population);
        let front = result.pareto_front();
        assert!(!front.is_empty(), "no feasible point found");
        // Every front point improves security over baseline.
        for p in &front {
            assert!(p.metrics.security < 1.0, "security {}", p.metrics.security);
        }
        // Front members must not dominate each other.
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.metrics.objectives(), &b.metrics.objectives()));
            }
        }
        // The nadir-referenced hypervolume of a non-empty front is
        // positive, and pushing the reference further out only grows it.
        let r = result.nadir_reference().expect("feasible points exist");
        let hv = result.hypervolume(r);
        assert!(hv > 0.0, "hypervolume {hv}");
        assert!(result.hypervolume([r[0] + 100.0, r[1] + 100.0]) > hv);
    }

    #[test]
    fn hypervolume_sweep_matches_hand_computed_rectangles() {
        let r = [10.0, 10.0];
        // One point: a single rectangle to the reference corner.
        assert_eq!(hypervolume_2d(vec![[1.0, 5.0]], r), 9.0 * 5.0);
        // Two staircase points: inclusion-exclusion gives 45 + 56 − 35.
        let hv = hypervolume_2d(vec![[3.0, 2.0], [1.0, 5.0]], r);
        assert!((hv - 66.0).abs() < 1e-12, "hv {hv}");
        // Duplicates collapse to one rectangle's worth of volume.
        let dup = hypervolume_2d(vec![[1.0, 5.0], [1.0, 5.0]], r);
        assert_eq!(dup, 45.0);
        // Points at or beyond the reference contribute nothing.
        assert_eq!(hypervolume_2d(vec![[10.0, 1.0], [2.0, 12.0]], r), 0.0);
        assert_eq!(hypervolume_2d(vec![], r), 0.0);
    }

    #[test]
    fn explore_is_deterministic_per_seed() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let params = Nsga2Params {
            population: 4,
            generations: 1,
            threads: 2,
            ..Nsga2Params::default()
        };
        let a = explore(&base, &tech, &params);
        let b = explore(&base, &tech, &params);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.genome, pb.genome);
            assert_eq!(pa.metrics.security, pb.metrics.security);
        }
    }
}
