//! Preprocessing: protect the security-critical cell assets.
//!
//! GDSII-Guard "preprocess\[es\] the original design such that the critical
//! cells will not be removed or replaced during the subsequent security
//! optimization" (§III-A). Here that means locking them in the occupancy
//! map: every ECO operator refuses to move locked cells.

use layout::Layout;

/// Locks every security-critical cell in place. Returns how many cells
/// were locked.
pub fn lock_critical_cells(layout: &mut Layout) -> usize {
    let critical = layout.design().critical_cells.clone();
    for &c in &critical {
        layout.occupancy_mut().lock(c);
    }
    critical.len()
}

/// Removes the locks again (used by tooling that wants to re-run a
/// baseline flow on a previously hardened layout).
pub fn unlock_critical_cells(layout: &mut Layout) {
    let critical = layout.design().critical_cells.clone();
    for &c in &critical {
        layout.occupancy_mut().unlock(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::Technology;

    #[test]
    fn locks_exactly_the_critical_set() {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let n_critical = design.critical_cells.len();
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 1);
        let locked = lock_critical_cells(&mut layout);
        assert_eq!(locked, n_critical);
        for (id, _) in layout.design().cells_iter() {
            let expect = layout.design().is_critical(id);
            assert_eq!(layout.occupancy().is_locked(id), expect, "cell {}", id.0);
        }
        unlock_critical_cells(&mut layout);
        assert!(layout
            .design()
            .critical_cells
            .iter()
            .all(|&c| !layout.occupancy().is_locked(c)));
    }
}
