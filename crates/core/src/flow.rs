//! The composed GDSII-Guard security flow `f(L_base; x)` and its metric
//! extraction, over the Table-I parameter space.

use ggjson::{FromJson, Json, ToJson};
use tech::{Technology, NUM_METAL_LAYERS};

use crate::error::Error;
use crate::lda::{local_density_adjustment, LdaParams};
use crate::pipeline::{evaluate_unchecked, EvalEngine, Snapshot};
use crate::{cell_shift, preprocess, rws, ALPHA, BETA_POWER, N_DRC};

/// The selected ECO placement operator (`op_select` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSelect {
    /// Cell Shift — for designs with loose timing.
    CellShift,
    /// Dynamic Local Density Adjustment with its grid/iteration parameters.
    Lda {
        /// Grid tiles per row/column (`LDA::N`).
        n: u32,
        /// Adjustment iterations (`LDA::n_iter`).
        n_iter: u32,
    },
}

impl ToJson for OpSelect {
    fn to_json(&self) -> Json {
        match self {
            OpSelect::CellShift => Json::Str("CellShift".into()),
            OpSelect::Lda { n, n_iter } => Json::Obj(vec![(
                "Lda".into(),
                Json::Obj(vec![
                    ("n".into(), n.to_json()),
                    ("n_iter".into(), n_iter.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for OpSelect {
    fn from_json(j: &Json) -> Option<Self> {
        if j.as_str() == Some("CellShift") {
            return Some(OpSelect::CellShift);
        }
        let lda = j.get("Lda")?;
        Some(OpSelect::Lda {
            n: u32::from_json(lda.get("n")?)?,
            n_iter: u32::from_json(lda.get("n_iter")?)?,
        })
    }
}

/// One point of the flow parameter space `D` (a feature vector `x`).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// ECO placement operator choice.
    pub op: OpSelect,
    /// Routing width scale per metal layer (`RWS::scale_M[i]`,
    /// index 0 = M1).
    pub scales: [f64; NUM_METAL_LAYERS],
}

impl FlowConfig {
    /// The identity configuration: cell shift, no width scaling.
    pub fn cell_shift_default() -> Self {
        Self {
            op: OpSelect::CellShift,
            scales: [1.0; NUM_METAL_LAYERS],
        }
    }

    /// A default LDA configuration.
    pub fn lda_default() -> Self {
        Self {
            op: OpSelect::Lda { n: 8, n_iter: 1 },
            scales: [1.0; NUM_METAL_LAYERS],
        }
    }
}

ggjson::json_struct!(FlowConfig { op, scales });

/// Post-flow design metrics, the fitness inputs of the optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// Normalized security score vs the baseline (lower is better;
    /// baseline = 1.0).
    pub security: f64,
    /// Absolute free placement sites over exploitable regions.
    pub er_sites: u64,
    /// Absolute free routing tracks over exploitable regions.
    pub er_tracks: f64,
    /// Total negative slack in ps (0 is timing-clean).
    pub tns_ps: f64,
    /// Total power in mW.
    pub power_mw: f64,
    /// DRC violations.
    pub drc: u32,
}

impl FlowMetrics {
    /// Extracts metrics from a snapshot, normalizing security against the
    /// baseline snapshot.
    pub fn from_snapshot(snap: &Snapshot, base: &Snapshot) -> Self {
        Self {
            security: secmetrics::security_score(&snap.security, &base.security, ALPHA),
            er_sites: snap.security.er_sites,
            er_tracks: snap.security.er_tracks,
            tns_ps: snap.tns_ps(),
            power_mw: snap.power_mw(),
            drc: snap.drc,
        }
    }

    /// The effective DRC bound: the baseline's own count plus the `N_DRC`
    /// tolerance. On a DRC-clean baseline this is exactly the paper's
    /// `DRC ≤ N_DRC = 20`; on a baseline that already carries violations
    /// it expresses the same intent — "tolerate minor DRC degradation,
    /// which can further be manually fixed" (§IV-A).
    pub fn drc_limit(base_drc: u32) -> u32 {
        base_drc + N_DRC
    }

    /// Whether the hard constraints of §II-C hold
    /// (`DRC ≤ max(N_DRC, DRC_base)`, `Power ≤ β_power · Power_base`).
    pub fn feasible(&self, base_power_mw: f64, base_drc: u32) -> bool {
        self.drc <= Self::drc_limit(base_drc) && self.power_mw <= BETA_POWER * base_power_mw
    }

    /// Aggregate constraint violation (0 when feasible); used for
    /// constrained domination in NSGA-II.
    pub fn constraint_violation(&self, base_power_mw: f64, base_drc: u32) -> f64 {
        let limit = Self::drc_limit(base_drc) as f64;
        let drc_cv = (self.drc as f64 - limit).max(0.0) / limit;
        let power_cv = (self.power_mw / (BETA_POWER * base_power_mw) - 1.0).max(0.0);
        drc_cv + power_cv
    }

    /// The two minimization objectives `(Security, −TNS)`.
    pub fn objectives(&self) -> [f64; 2] {
        [self.security, -self.tns_ps]
    }
}

ggjson::json_struct!(FlowMetrics {
    security,
    er_sites,
    er_tracks,
    tns_ps,
    power_mw,
    drc
});

/// Applies the ECO placement operator of `op` to a locked copy of the
/// baseline layout. The result depends only on `(op, seed)` — routing
/// width scales are installed afterwards and never feed the operator.
fn apply_operator(base: &Snapshot, tech: &Technology, op: OpSelect, seed: u64) -> layout::Layout {
    let mut layout = layout::Layout::clone(&base.layout);
    preprocess::lock_critical_cells(&mut layout);
    match op {
        OpSelect::CellShift => {
            cell_shift::cell_shift(&mut layout, tech, secmetrics::THRESH_ER);
        }
        OpSelect::Lda { n, n_iter } => {
            local_density_adjustment(&mut layout, tech, LdaParams { n, n_iter }, seed);
        }
    }
    layout
}

/// The seed an operator actually consumes: Cell Shift is deterministic,
/// so every seed maps to the same edit (and the same memoization slot).
fn operator_seed(op: OpSelect, seed: u64) -> u64 {
    match op {
        OpSelect::CellShift => 0,
        OpSelect::Lda { .. } => seed,
    }
}

/// Applies the ECO operators of `cfg` to the baseline layout without
/// evaluating: the shared edit step of [`apply_flow`] and
/// [`apply_flow_with`].
fn edit_layout(base: &Snapshot, tech: &Technology, cfg: &FlowConfig, seed: u64) -> layout::Layout {
    let mut layout = apply_operator(base, tech, cfg.op, seed);
    rws::apply_width_scaling(&mut layout, cfg.scales);
    layout
}

/// The full flow from the base snapshot: edit, re-route, full metric
/// extraction. Infallible: the operators preserve layout consistency by
/// construction (asserted in debug builds), so this goes through
/// [`evaluate_unchecked`] and skips the redundant validation pass.
fn oracle_snapshot(base: &Snapshot, tech: &Technology, cfg: &FlowConfig, seed: u64) -> Snapshot {
    evaluate_unchecked(edit_layout(base, tech, cfg, seed), tech)
}

/// The incremental flow through a prebuilt [`EvalEngine`]: same edit, but
/// re-evaluation is incremental against the engine's cached baseline, and
/// the placement-operator result (which cannot depend on the width scales
/// applied after it) is memoized per `(operator, seed)` together with its
/// patched Phase-A plan as a copy-on-write
/// [`crate::pipeline::CowSnapshot`]. A candidate that shares its operator
/// with a previous one therefore skips the operator, the dirty-set diff,
/// and the re-pattern — a cache hit is two refcount bumps, and a
/// scale-identical sibling never copies the layout at all; installing a
/// different rule copies the layout once and re-derives plan capacities.
/// Bit-identical to the oracle path: patterns are congestion-oblivious
/// and usage is stored unscaled, so the plan cannot depend on the rule
/// (see [`route::RoutePlan::set_rule`]).
fn engine_snapshot(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> Result<Snapshot, Error> {
    let op_seed = operator_seed(cfg.op, seed);
    let cow = engine.cached_edit(tech, cfg.op, op_seed, || {
        apply_operator(engine.base(), tech, cfg.op, op_seed)
    })?;
    let rule = tech::RouteRule::from_scales(cfg.scales);
    let dirty = cow.phase_a_dirty();
    let (layout, plan) = cow.into_parts(tech, &rule);
    Ok(engine.evaluate_with_plan(layout, plan, tech, &dirty))
}

/// The incremental flow's metric path. On top of [`engine_snapshot`]'s
/// structural caches this memoizes the *metrics* of each distinct
/// `(operator, operator seed, rule)` triple: the flow is a pure function
/// of that key, so a semantic duplicate — a different genome collapsing
/// to the same key, which GA populations produce constantly — returns the
/// provably identical result without re-running Phase B, STA, or the
/// security analysis. Misses (and every fallible step) still go through
/// the full incremental path.
fn engine_metrics(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> Result<FlowMetrics, Error> {
    let key = (
        cfg.op,
        operator_seed(cfg.op, seed),
        cfg.scales.map(f64::to_bits),
    );
    if let Some(m) = engine.memoized_metrics(&key) {
        return Ok(m);
    }
    let snap = engine_snapshot(engine, tech, cfg, seed)?;
    let m = FlowMetrics::from_snapshot(&snap, engine.base());
    engine.memoize_metrics(key, m);
    Ok(m)
}

/// One configured execution of the composed security flow `f(L_base; x)`.
///
/// `FlowRun` is the single entry point that replaced the old six-function
/// family (`apply_flow`, `run_flow`, `apply_flow_with`,
/// `apply_flow_with_unchecked`, `run_flow_with`,
/// `run_flow_with_unchecked`): pick the *source* (the from-scratch oracle
/// via [`FlowRun::new`], or the incremental path via [`FlowRun::engine`]),
/// tune the run with [`seed`](FlowRun::seed), and finish with a terminal
/// — [`snapshot`](FlowRun::snapshot) for the full evaluated layout or
/// [`metrics`](FlowRun::metrics) for the fitness vector. Callers that
/// treat a poisoned operator-edit cache as a bug rather than a
/// recoverable condition opt into the panicking contract with
/// [`unchecked`](FlowRun::unchecked).
///
/// ```no_run
/// use gdsii_guard::prelude::*;
/// use tech::Technology;
/// # fn main() -> Result<(), gdsii_guard::Error> {
/// let tech = Technology::nangate45_like();
/// let base = implement_baseline(&netlist::bench::tiny_spec(), &tech)?;
/// let cfg = FlowConfig::cell_shift_default();
///
/// // From-scratch oracle evaluation.
/// let m = FlowRun::new(&base, &tech, &cfg).seed(7).metrics()?;
///
/// // Incremental evaluation through a shared engine.
/// let engine = EvalEngine::new(&base, &tech);
/// let inc = FlowRun::new(&base, &tech, &cfg)
///     .seed(7)
///     .engine(&engine)
///     .metrics()?;
/// assert_eq!(m, inc);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy)]
#[must_use = "a FlowRun does nothing until `.snapshot()` or `.metrics()` runs it"]
pub struct FlowRun<'a> {
    base: &'a Snapshot,
    engine: Option<&'a EvalEngine>,
    tech: &'a Technology,
    cfg: &'a FlowConfig,
    seed: u64,
}

impl<'a> FlowRun<'a> {
    /// Starts a flow run of `cfg` against the baseline snapshot, using the
    /// from-scratch oracle path (every stage recomputed). The default seed
    /// is 1, matching the historical convention of the examples and tests.
    pub fn new(base: &'a Snapshot, tech: &'a Technology, cfg: &'a FlowConfig) -> Self {
        Self {
            base,
            engine: None,
            tech,
            cfg,
            seed: 1,
        }
    }

    /// Sets the seed of the flow's internal RNG (feeds the ECO placement
    /// operator; Cell Shift is deterministic and ignores it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Routes the run through a prebuilt [`EvalEngine`]: evaluation
    /// becomes incremental against the engine's cached baseline, operator
    /// edits and metrics are memoized, and results stay bit-identical to
    /// the oracle path. The engine must have been built from the same
    /// baseline passed to [`FlowRun::new`] — metrics are normalized
    /// against [`EvalEngine::base`].
    pub fn engine(mut self, engine: &'a EvalEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Switches the terminals to the panicking contract of the old
    /// `*_unchecked` family: a poisoned operator-edit cache panics
    /// instead of surfacing [`Error::EditCachePoisoned`].
    pub fn unchecked(self) -> FlowRunUnchecked<'a> {
        FlowRunUnchecked(self)
    }

    /// Runs the flow and returns the fully evaluated [`Snapshot`].
    ///
    /// # Errors
    ///
    /// Only the engine path can fail (poisoned operator-edit cache); the
    /// oracle path always returns `Ok`.
    pub fn snapshot(self) -> Result<Snapshot, Error> {
        match self.engine {
            Some(engine) => engine_snapshot(engine, self.tech, self.cfg, self.seed),
            None => Ok(oracle_snapshot(self.base, self.tech, self.cfg, self.seed)),
        }
    }

    /// Runs the flow and returns its [`FlowMetrics`], normalized against
    /// the baseline.
    ///
    /// # Errors
    ///
    /// Only the engine path can fail (poisoned operator-edit cache); the
    /// oracle path always returns `Ok`.
    pub fn metrics(self) -> Result<FlowMetrics, Error> {
        match self.engine {
            Some(engine) => engine_metrics(engine, self.tech, self.cfg, self.seed),
            None => {
                let snap = oracle_snapshot(self.base, self.tech, self.cfg, self.seed);
                Ok(FlowMetrics::from_snapshot(&snap, self.base))
            }
        }
    }
}

/// A [`FlowRun`] with the panicking terminals of the old `*_unchecked`
/// family (see [`FlowRun::unchecked`]).
#[must_use = "a FlowRun does nothing until `.snapshot()` or `.metrics()` runs it"]
pub struct FlowRunUnchecked<'a>(FlowRun<'a>);

impl FlowRunUnchecked<'_> {
    /// Runs the flow and returns the fully evaluated [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if a worker poisoned the engine's operator-edit cache.
    pub fn snapshot(self) -> Snapshot {
        self.0.snapshot().expect("operator-edit cache poisoned")
    }

    /// Runs the flow and returns its [`FlowMetrics`].
    ///
    /// # Panics
    ///
    /// Panics if a worker poisoned the engine's operator-edit cache.
    pub fn metrics(self) -> FlowMetrics {
        self.0.metrics().expect("operator-edit cache poisoned")
    }
}

/// Applies the full GDSII-Guard flow to the baseline and returns the
/// evaluated snapshot.
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(base, tech, cfg).seed(seed).unchecked().snapshot()`"
)]
pub fn apply_flow(base: &Snapshot, tech: &Technology, cfg: &FlowConfig, seed: u64) -> Snapshot {
    FlowRun::new(base, tech, cfg)
        .seed(seed)
        .unchecked()
        .snapshot()
}

/// Applies the flow and returns its metrics in one call.
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(base, tech, cfg).seed(seed).unchecked().metrics()`"
)]
pub fn run_flow(base: &Snapshot, tech: &Technology, cfg: &FlowConfig, seed: u64) -> FlowMetrics {
    FlowRun::new(base, tech, cfg)
        .seed(seed)
        .unchecked()
        .metrics()
}

/// The old incremental snapshot path through a prebuilt [`EvalEngine`].
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(engine.base(), tech, cfg).engine(engine).seed(seed).snapshot()`"
)]
pub fn apply_flow_with(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> Result<Snapshot, Error> {
    FlowRun::new(engine.base(), tech, cfg)
        .engine(engine)
        .seed(seed)
        .snapshot()
}

/// The old panicking incremental snapshot path.
///
/// # Panics
///
/// Panics if a worker poisoned the engine's operator-edit cache.
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(engine.base(), tech, cfg).engine(engine).seed(seed).unchecked().snapshot()`"
)]
pub fn apply_flow_with_unchecked(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> Snapshot {
    FlowRun::new(engine.base(), tech, cfg)
        .engine(engine)
        .seed(seed)
        .unchecked()
        .snapshot()
}

/// The old incremental metrics path through a prebuilt [`EvalEngine`].
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(engine.base(), tech, cfg).engine(engine).seed(seed).metrics()`"
)]
pub fn run_flow_with(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> Result<FlowMetrics, Error> {
    FlowRun::new(engine.base(), tech, cfg)
        .engine(engine)
        .seed(seed)
        .metrics()
}

/// The old panicking incremental metrics path.
///
/// # Panics
///
/// Panics if a worker poisoned the engine's operator-edit cache.
#[deprecated(
    since = "0.1.0",
    note = "use `FlowRun::new(engine.base(), tech, cfg).engine(engine).seed(seed).unchecked().metrics()`"
)]
pub fn run_flow_with_unchecked(
    engine: &EvalEngine,
    tech: &Technology,
    cfg: &FlowConfig,
    seed: u64,
) -> FlowMetrics {
    FlowRun::new(engine.base(), tech, cfg)
        .engine(engine)
        .seed(seed)
        .unchecked()
        .metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::implement_baseline;
    use netlist::bench;

    fn base() -> (Technology, Snapshot) {
        let tech = Technology::nangate45_like();
        let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        (tech, snap)
    }

    #[test]
    fn cell_shift_flow_improves_security() {
        let (tech, base) = base();
        let m = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
            .unchecked()
            .metrics();
        assert!(
            m.security < 0.5,
            "cell shift should cut exploitable space sharply, got {}",
            m.security
        );
        assert!(m.er_sites < base.security.er_sites);
    }

    #[test]
    fn lda_flow_improves_security_on_tight_designs() {
        // LDA targets timing-tight designs, where exploitable distances are
        // short and local density matters (§III-B2); on loose designs the
        // whole core is within reach and relocation cannot help.
        let tech = Technology::nangate45_like();
        let mut spec = bench::tiny_spec();
        spec.period_factor = 0.95;
        let base = crate::pipeline::evaluate(
            {
                let design = netlist::bench::generate(&spec, &tech);
                let mut layout = layout::Layout::empty_floorplan(design, &tech, 0.6);
                place::global_place(&mut layout, &tech, spec.seed);
                place::refine_wirelength(&mut layout, &tech, 2, spec.seed);
                layout
            },
            &tech,
        )
        .unwrap();
        let m = FlowRun::new(&base, &tech, &FlowConfig::lda_default())
            .unchecked()
            .metrics();
        assert!(
            m.security < 1.0,
            "LDA should reduce exploitable space, got {}",
            m.security
        );
    }

    #[test]
    fn width_scaling_cuts_tracks_beyond_sites() {
        let (tech, base) = base();
        let mut cfg = FlowConfig::cell_shift_default();
        let plain = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
        cfg.scales = [1.0, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5];
        let scaled = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
        // Same placement operator; the track metric must drop further
        // relative to sites when wires widen (or both are already zero).
        let plain_ratio = if plain.er_sites > 0 {
            plain.er_tracks / plain.er_sites as f64
        } else {
            0.0
        };
        let scaled_ratio = if scaled.er_sites > 0 {
            scaled.er_tracks / scaled.er_sites as f64
        } else {
            0.0
        };
        assert!(
            scaled_ratio <= plain_ratio + 1e-9,
            "scaled {scaled_ratio} vs plain {plain_ratio}"
        );
    }

    #[test]
    fn constraints_and_objectives() {
        let m = FlowMetrics {
            security: 0.1,
            er_sites: 10,
            er_tracks: 20.0,
            tns_ps: -50.0,
            power_mw: 1.0,
            drc: 25,
        };
        assert!(!m.feasible(1.0, 0), "DRC over budget");
        assert!(m.constraint_violation(1.0, 0) > 0.0);
        let ok = FlowMetrics { drc: 5, ..m };
        assert!(ok.feasible(1.0, 0));
        // The DRC bound tracks a noisier baseline: base 30 admits 25.
        assert!(m.feasible(1.0, 30), "baseline at 30 DRC admits 25");
        assert_eq!(FlowMetrics::drc_limit(0), crate::N_DRC);
        assert_eq!(ok.constraint_violation(1.0, 0), 0.0);
        assert_eq!(ok.objectives(), [0.1, 50.0]);
    }

    #[test]
    fn incremental_flow_matches_oracle() {
        let (tech, base) = base();
        let engine = EvalEngine::new(&base, &tech);
        let mut scaled = FlowConfig::cell_shift_default();
        scaled.scales = [1.0, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2];
        for cfg in [
            FlowConfig::cell_shift_default(),
            FlowConfig::lda_default(),
            scaled,
        ] {
            let full = FlowRun::new(&base, &tech, &cfg)
                .seed(7)
                .unchecked()
                .metrics();
            let inc = FlowRun::new(&base, &tech, &cfg)
                .seed(7)
                .engine(&engine)
                .metrics()
                .unwrap();
            assert_eq!(full, inc, "incremental diverged on {cfg:?}");
        }
    }

    #[test]
    fn flow_leaves_baseline_untouched() {
        let (tech, base) = base();
        let before = base.security.er_sites;
        let _ = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
            .unchecked()
            .metrics();
        assert_eq!(base.security.er_sites, before);
        base.layout.check_consistency(&tech).unwrap();
    }
}
