//! **GDSII-Guard**: an ECO framework hardening finalized physical layouts
//! against fabrication-time hardware-Trojan insertion while co-optimizing
//! timing — a from-scratch Rust reproduction of the DAC 2023 paper
//! *"GDSII-Guard: ECO Anti-Trojan Optimization with Exploratory
//! Timing-Security Trade-Offs"* (Wei, Zhang, Luo).
//!
//! The framework (paper Fig. 2):
//!
//! 1. [`pipeline`] — implement the baseline layout (place, route, STA,
//!    power, security analysis) and re-evaluate modified layouts.
//! 2. [`preprocess`] — lock security-critical cell assets so no operator
//!    disturbs them.
//! 3. ECO operators: [`cell_shift`] (Algorithm 1), [`lda`] (Algorithm 2 —
//!    dynamic local density adjustment), and [`rws`] (routing width
//!    scaling via non-default rules).
//! 4. [`flow`] — the composed security flow `f(L_base; x)` over the
//!    Table-I parameter space.
//! 5. [`nsga2`] — the multi-objective (security, timing) exploration with
//!    DRC and power constraints, yielding Pareto-optimal hardened layouts.
//! 6. [`serve`] — exploration-as-a-service: the multi-tenant job daemon
//!    behind `ggd serve` (queued jobs with priorities, checkpoint-backed
//!    pause/resume, streaming progress over a Unix-domain socket).
//!
//! # Examples
//!
//! ```no_run
//! use gdsii_guard::prelude::*;
//! use netlist::bench;
//! use tech::Technology;
//!
//! # fn main() -> Result<(), gdsii_guard::Error> {
//! let tech = Technology::nangate45_like();
//! let spec = bench::spec_by_name("PRESENT").unwrap();
//! let base = implement_baseline(&spec, &tech)?;
//! let result = explore(&base, &tech, &Nsga2Params::default());
//! for point in result.pareto_front() {
//!     println!("security {:.3} tns {:.1}", point.metrics.security, point.metrics.tns_ps);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Telemetry
//!
//! The whole workspace reports through the dependency-free [`obs`]
//! telemetry crate (re-exported here): phase spans, counters, and
//! histograms, all behind a single atomic off-switch that keeps the
//! disabled path effectively free. Enable with [`obs::set_enabled`]
//! (metrics + spans) and pick per-topic trace streams programmatically
//! via [`obs::enable`] or with the `GG_TRACE` environment variable
//! (e.g. `GG_TRACE=route,lda`).

// The evaluation pipeline must never bring the exploration process down:
// failures surface as typed errors or flow through the sandbox degrade
// chain (see `sandbox`), so bare `unwrap()` is denied outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cell_shift;
pub mod checkpoint;
mod error;
pub mod flow;
pub mod lda;
pub mod nsga2;
pub mod pipeline;
pub mod preprocess;
pub mod rws;
pub mod sandbox;
pub mod serve;

pub use checkpoint::Checkpoint;
pub use error::Error;
pub use flow::{FlowConfig, FlowMetrics, FlowRun, FlowRunUnchecked, OpSelect};
pub use nsga2::{
    explore, explore_with, explore_with_engine, EvalPoint, ExploreOptions, ExploreResult, Genome,
    Nsga2Params, Nsga2ParamsBuilder, QuarantineEntry,
};
pub use pipeline::{CowSnapshot, EvalEngine, Snapshot};
pub use sandbox::{EvalFailure, EvalStatus};

/// The workspace-wide telemetry subsystem (spans, counters, histograms).
pub use obs;

/// The blessed public surface in one import: the baseline flow, the
/// incremental evaluation engine, the NSGA-II exploration, and the
/// telemetry handles every binary wants.
///
/// ```no_run
/// use gdsii_guard::prelude::*;
/// ```
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::flow::{
        apply_flow, apply_flow_with, apply_flow_with_unchecked, run_flow, run_flow_with,
        run_flow_with_unchecked,
    };

    pub use crate::checkpoint::Checkpoint;
    pub use crate::error::Error;
    pub use crate::flow::{FlowConfig, FlowMetrics, FlowRun, FlowRunUnchecked, OpSelect};
    pub use crate::nsga2::{
        explore, explore_with, explore_with_engine, EvalPoint, ExploreOptions, ExploreResult,
        Genome, Nsga2Params, Nsga2ParamsBuilder, QuarantineEntry,
    };
    pub use crate::pipeline::{
        evaluate, evaluate_unchecked, implement_baseline, implement_baseline_unchecked,
        CowSnapshot, EvalEngine, Snapshot,
    };
    pub use crate::sandbox::{EvalFailure, EvalStatus};
    pub use crate::serve;
    pub use obs;
}

/// Default hard constraint on DRC violations (`N_DRC` in §IV-A).
pub const N_DRC: u32 = 20;

/// Default power budget multiplier over baseline (`β_power` in §IV-A).
pub const BETA_POWER: f64 = 1.2;

/// Default weight between free sites and free tracks in the security
/// objective (`α` in §IV-A).
pub const ALPHA: f64 = 0.5;
