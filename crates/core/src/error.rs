//! Typed errors for the public flow API.
//!
//! The crate used to panic at its two fallible seams — a layout that fails
//! [`layout::Layout::check_consistency`] and a poisoned operator-edit
//! cache. Both now surface as [`Error`] from the validating entry points
//! ([`crate::pipeline::evaluate`], [`crate::pipeline::implement_baseline`],
//! the checked [`crate::flow::FlowRun`] terminals); the
//! [`crate::flow::FlowRun::unchecked`] path keeps the old infallible
//! behaviour for callers that construct layouts themselves and have
//! already validated them.

use std::fmt;

/// Everything that can go wrong inside the evaluation flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The layout handed to a validating entry point fails
    /// `check_consistency` against the technology; the payload is the
    /// consistency checker's diagnostic.
    InconsistentLayout(String),
    /// A worker thread panicked while holding the operator-edit cache
    /// lock, so memoized edits can no longer be trusted.
    EditCachePoisoned,
    /// A sandboxed candidate evaluation failed (panic, injected fault, or
    /// deadline overrun) and exhausted its degrade chain; the payload is
    /// the rendered [`crate::sandbox::EvalFailure`] with the offending
    /// genome attached.
    EvalFailed(String),
    /// A checkpoint could not be written, read, or trusted (I/O error,
    /// checksum/version mismatch, or a base snapshot that differs from the
    /// one the checkpoint was taken against).
    Checkpoint(String),
    /// The job server refused a request or the socket transport failed
    /// (unknown job, bad job spec, protocol violation, connect/read/write
    /// error); the payload is the server's or transport's diagnostic.
    Serve(String),
    /// The job server is over its admission limits (queue depth or memory
    /// budget) and refused a submit. Unlike [`Error::Serve`] this is
    /// *retryable*: the same request is expected to succeed once load
    /// drains, and [`crate::serve::Client`] retries it with backoff
    /// before surfacing the error.
    Busy(String),
    /// A command-line invocation could not be parsed (unknown subcommand,
    /// unknown flag, missing or malformed argument). The payload is the
    /// diagnostic; `ggd` prints the relevant usage text alongside it.
    InvalidArgs(String),
    /// A filesystem operation outside the checkpoint envelope failed
    /// (e.g. writing an exported GDSII stream).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InconsistentLayout(why) => {
                write!(f, "layout fails consistency check: {why}")
            }
            Error::EditCachePoisoned => {
                write!(f, "operator-edit cache poisoned by a panicked worker")
            }
            Error::EvalFailed(why) => {
                write!(f, "candidate evaluation failed: {why}")
            }
            Error::Checkpoint(why) => {
                write!(f, "checkpoint error: {why}")
            }
            Error::Serve(why) => {
                write!(f, "job server error: {why}")
            }
            Error::Busy(why) => {
                write!(f, "job server busy (retryable): {why}")
            }
            Error::InvalidArgs(why) => {
                write!(f, "invalid arguments: {why}")
            }
            Error::Io(why) => {
                write!(f, "I/O error: {why}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InconsistentLayout("cell 3 off grid".into());
        assert!(e.to_string().contains("cell 3 off grid"));
        assert!(Error::EditCachePoisoned.to_string().contains("poisoned"));
    }
}
