//! Generation-level checkpoint/resume for the NSGA-II exploration.
//!
//! After every completed generation, [`crate::nsga2::explore_with`] persists
//! the full loop state — population, evaluation archive (every point with
//! its metrics), RNG stream, and quarantine ledger — so a killed run resumes
//! *bit-identically* to an uninterrupted one.
//!
//! # Atomicity and integrity
//!
//! A checkpoint is written to `<path>.tmp` and [`std::fs::rename`]d into
//! place, so readers only ever observe a complete file. The envelope wraps
//! the payload with a format version and an FNV-1a checksum over the
//! payload's serialized text; load refuses version or checksum mismatches
//! with a typed [`Error::Checkpoint`] instead of resuming from torn state.
//!
//! # Versioning
//!
//! [`FORMAT_VERSION`] bumps whenever the payload layout changes; a resume
//! against a newer or older version fails closed (the caller restarts from
//! scratch rather than mis-parse). RNG state words and the fingerprint are
//! serialized as hex strings because `ggjson` numbers are `f64`-backed and
//! only exact below 2^53.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ggjson::{FromJson, Json, ToJson};

use crate::error::Error;
use crate::flow::FlowMetrics;
use crate::nsga2::{Genome, Nsga2Params, QuarantineEntry};
use crate::pipeline::Snapshot;

/// Checkpoint payload format version (see module docs).
pub const FORMAT_VERSION: u32 = 1;

/// The persisted state of an exploration run after `generation` completed
/// generations (0 = the initial population has been evaluated).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Hex fingerprint of the base snapshot the run started from.
    pub base_fingerprint: String,
    /// The exploration parameters (a resume must match them exactly).
    pub params: Nsga2Params,
    /// Completed generations (0 = initial population evaluated).
    pub generation: usize,
    /// The exploration RNG's xoshiro256++ state, as four hex words.
    pub rng: Vec<String>,
    /// Current population, in population order.
    pub pop: Vec<Genome>,
    /// Every unique evaluated genome with its first-seen generation, in
    /// evaluation order (the archive `ExploreResult::points` is built
    /// from).
    pub order: Vec<(Genome, usize)>,
    /// Metrics per evaluated genome, sorted by chromosome for
    /// byte-stable serialization.
    pub cache: Vec<(Genome, FlowMetrics)>,
    /// Quarantine ledger: candidates that exhausted the degrade chain.
    pub quarantine: Vec<QuarantineEntry>,
}

ggjson::json_struct!(Checkpoint {
    base_fingerprint,
    params,
    generation,
    rng,
    pop,
    order,
    cache,
    quarantine
});

impl Checkpoint {
    /// Serializes, checksums, and atomically installs the checkpoint at
    /// `path` (tmp + rename). Creates the parent directory if missing.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        let t0 = Instant::now();
        // The payload is rendered exactly once; the envelope is spliced
        // around the rendered text instead of re-serializing the whole
        // archive a second time. Load re-renders the *parsed* payload for
        // checksum verification, which reproduces this text regardless of
        // the splice's indentation (the renderer is deterministic and
        // whitespace between tokens is not part of the value).
        let text = ggjson::to_string_pretty(&self.to_json());
        let sum = hex64(fnv1a(text.as_bytes()));
        let envelope =
            format!("{{\n  \"version\": {FORMAT_VERSION},\n  \"checksum\": \"{sum}\",\n  \"payload\": {text}\n}}");
        let io = |e: std::io::Error| Error::Checkpoint(format!("{}: {e}", path.display()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(envelope.as_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        // Keep the outgoing envelope as `<path>.prev` — the last-good
        // fallback `load_with_fallback` resumes from when the primary is
        // corrupt (torn by a crash, or bit-rotted on disk). Best-effort:
        // a failed preserve must not block installing the new checkpoint.
        if path.exists() {
            let _ = std::fs::rename(path, prev_path(path));
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        record_write(t0.elapsed().as_secs_f64());
        Ok(())
    }

    /// Loads and verifies a checkpoint's envelope (version + checksum).
    /// Compatibility with a specific run is checked by [`Self::verify`].
    pub fn load(path: &Path) -> Result<Self, Error> {
        let err = |why: String| Error::Checkpoint(format!("{}: {why}", path.display()));
        let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
        let envelope: Json = ggjson::from_str(&text).ok_or_else(|| err("not valid JSON".into()))?;
        let version = envelope
            .get("version")
            .and_then(Json::as_num)
            .ok_or_else(|| err("missing version".into()))?;
        if version != f64::from(FORMAT_VERSION) {
            return Err(err(format!(
                "format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let payload = envelope
            .get("payload")
            .ok_or_else(|| err("missing payload".into()))?;
        // The checksum covers the payload's canonical serialization, which
        // re-rendering the parsed payload reproduces exactly.
        let expect = envelope
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing checksum".into()))?;
        let actual = hex64(fnv1a(ggjson::to_string_pretty(payload).as_bytes()));
        if expect != actual {
            return Err(err(format!("checksum mismatch ({expect} != {actual})")));
        }
        Checkpoint::from_json(payload).ok_or_else(|| err("payload does not decode".into()))
    }

    /// [`Checkpoint::load`], falling back to the `<path>.prev` last-good
    /// envelope when the primary is unreadable (missing, torn, failing
    /// its FNV-1a checksum, or carrying the wrong format version).
    ///
    /// Returns the checkpoint plus whether the fallback was taken. A
    /// successful fallback bumps the `checkpoint.corrupt_recovered`
    /// counter and warns — resuming from the previous generation is
    /// always sound (the missing generation re-runs deterministically),
    /// so a corrupt primary degrades a job instead of erroring it. When
    /// both envelopes fail, the *primary's* error is returned.
    pub fn load_with_fallback(path: &Path) -> Result<(Self, bool), Error> {
        let primary = match Self::load(path) {
            Ok(cp) => return Ok((cp, false)),
            Err(e) => e,
        };
        let prev = prev_path(path);
        if prev.exists() {
            if let Ok(cp) = Self::load(&prev) {
                metrics().corrupt_recovered.incr();
                obs::diagln!(
                    "checkpoint: {} is corrupt ({primary}); resumed from last-good {}",
                    path.display(),
                    prev.display()
                );
                return Ok((cp, true));
            }
        }
        Err(primary)
    }

    /// Checks that this checkpoint belongs to the run being resumed: same
    /// base snapshot and identical exploration parameters.
    pub fn verify(&self, base: &Snapshot, params: &Nsga2Params) -> Result<(), Error> {
        let fp = fingerprint(base);
        if self.base_fingerprint != fp {
            return Err(Error::Checkpoint(format!(
                "base snapshot fingerprint {fp} does not match checkpoint {}",
                self.base_fingerprint
            )));
        }
        if self.params != *params {
            return Err(Error::Checkpoint(
                "exploration parameters differ from the checkpointed run".into(),
            ));
        }
        if self.rng.len() != 4 {
            return Err(Error::Checkpoint("malformed RNG state".into()));
        }
        Ok(())
    }

    /// Decodes the persisted RNG state words.
    pub fn rng_state(&self) -> Result<[u64; 4], Error> {
        let mut s = [0u64; 4];
        if self.rng.len() != 4 {
            return Err(Error::Checkpoint("malformed RNG state".into()));
        }
        for (w, h) in s.iter_mut().zip(&self.rng) {
            *w = parse_hex64(h)
                .ok_or_else(|| Error::Checkpoint(format!("bad RNG state word {h:?}")))?;
        }
        Ok(s)
    }
}

/// The `<path>.prev` sibling holding the previous good envelope (see
/// [`Checkpoint::load_with_fallback`]).
pub fn prev_path(path: &Path) -> std::path::PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".prev");
    std::path::PathBuf::from(p)
}

/// Deterministic fingerprint of a base snapshot: its headline metrics plus
/// design size, enough to catch resuming against the wrong design or a
/// different baseline implementation.
pub fn fingerprint(base: &Snapshot) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(base.security.er_sites);
    mix(base.security.er_tracks.to_bits());
    mix(base.tns_ps().to_bits());
    mix(base.power_mw().to_bits());
    mix(u64::from(base.drc));
    mix(base.layout.design().nets.len() as u64);
    mix(base.routing.total_wirelength_um().to_bits());
    hex64(h)
}

/// FNV-1a over a byte slice (shared with the job journal's per-line
/// checksums).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fixed-width hex rendering of a state/checksum word.
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Inverse of [`hex64`].
pub fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Cumulative nanoseconds spent writing checkpoints (backs the
/// `checkpoint.write_secs` gauge, which obs stores as one f64 cell).
static WRITE_NANOS: AtomicU64 = AtomicU64::new(0);

struct CheckpointMetrics {
    writes: obs::Counter,
    write_secs: obs::Gauge,
    corrupt_recovered: obs::Counter,
}

fn metrics() -> &'static CheckpointMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<CheckpointMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CheckpointMetrics {
        writes: obs::counter("checkpoint.writes"),
        write_secs: obs::gauge("checkpoint.write_secs"),
        corrupt_recovered: obs::counter("checkpoint.corrupt_recovered"),
    })
}

fn record_write(secs: f64) {
    let m = metrics();
    m.writes.incr();
    let total = WRITE_NANOS.fetch_add((secs * 1e9) as u64, Ordering::Relaxed) as f64 / 1e9 + secs;
    m.write_secs.set(total);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let g = Genome {
            op: 1,
            n_idx: 2,
            iter_idx: 0,
            scale_idx: [0, 1, 2, 3, 0, 1, 2, 3, 0, 1],
        };
        let m = FlowMetrics {
            security: 0.25,
            er_sites: 123,
            er_tracks: 45.5,
            tns_ps: -10.25,
            power_mw: 1.5,
            drc: 3,
        };
        Checkpoint {
            base_fingerprint: hex64(0xDEAD_BEEF),
            params: Nsga2Params::builder().population(4).generations(2).build(),
            generation: 1,
            rng: vec![hex64(1), hex64(2), hex64(3), hex64(u64::MAX)],
            pop: vec![g],
            order: vec![(g, 0)],
            cache: vec![(g, m)],
            quarantine: vec![QuarantineEntry {
                genome: g,
                generation: 1,
                incremental: "injected fault at route.overflow".into(),
                full: "deadline exceeded (5 ms budget)".into(),
            }],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("ggcp-{}", std::process::id()));
        let path = dir.join("checkpoint.ggjson");
        let cp = sample();
        cp.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(cp, back);
        assert_eq!(back.rng_state().expect("rng"), [1, 2, 3, u64::MAX]);
        // No tmp residue after the atomic install.
        assert!(!dir.join("checkpoint.ggjson.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corruption_and_bad_versions() {
        let dir = std::env::temp_dir().join(format!("ggcp-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("checkpoint.ggjson");
        let cp = sample();
        cp.save(&path).expect("save");

        // Flip a byte inside the payload: checksum must catch it.
        let mut text = std::fs::read_to_string(&path).expect("read");
        let at = text.find("123").expect("er_sites literal present");
        text.replace_range(at..at + 3, "124");
        std::fs::write(&path, &text).expect("write");
        match Checkpoint::load(&path) {
            Err(Error::Checkpoint(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("expected checksum failure, got {other:?}"),
        }

        // Wrong version fails closed.
        cp.save(&path).expect("save");
        let text = std::fs::read_to_string(&path)
            .expect("read")
            .replace("\"version\": 1", "\"version\": 999");
        std::fs::write(&path, &text).expect("write");
        match Checkpoint::load(&path) {
            Err(Error::Checkpoint(why)) => assert!(why.contains("version"), "{why}"),
            other => panic!("expected version failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_preserves_previous_envelope_and_fallback_recovers() {
        let dir = std::env::temp_dir().join(format!("ggcp-prev-{}", std::process::id()));
        let path = dir.join("checkpoint.ggjson");
        let mut gen0 = sample();
        gen0.generation = 0;
        let mut gen1 = sample();
        gen1.generation = 1;
        gen0.save(&path).expect("save gen0");
        assert!(!prev_path(&path).exists(), "first save has nothing to keep");
        gen1.save(&path).expect("save gen1");
        assert!(prev_path(&path).exists(), "second save keeps the last good");
        assert_eq!(
            Checkpoint::load(&prev_path(&path))
                .expect("prev loads")
                .generation,
            0
        );

        // Healthy primary: no fallback taken.
        let (cp, recovered) = Checkpoint::load_with_fallback(&path).expect("load");
        assert_eq!((cp.generation, recovered), (1, false));

        // Primary vanished (crash between the two installing renames):
        // the fallback resumes from the previous generation.
        std::fs::remove_file(&path).expect("remove primary");
        let (cp, recovered) = Checkpoint::load_with_fallback(&path).expect("fallback");
        assert_eq!((cp.generation, recovered), (0, true));

        // Both gone: the primary's error surfaces.
        std::fs::remove_file(prev_path(&path)).expect("remove prev");
        assert!(Checkpoint::load_with_fallback(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupt-a-byte matrix: flip single bytes across the primary
    /// envelope and assert every flip either leaves the load intact
    /// (whitespace between tokens) or degrades to the `.prev` fallback —
    /// never an error, never a silently wrong payload.
    #[test]
    fn corrupt_byte_matrix_always_recovers() {
        let dir = std::env::temp_dir().join(format!("ggcp-matrix-{}", std::process::id()));
        let path = dir.join("checkpoint.ggjson");
        let mut gen0 = sample();
        gen0.generation = 0;
        let mut gen1 = sample();
        gen1.generation = 1;
        gen0.save(&path).expect("save gen0");
        gen1.save(&path).expect("save gen1");
        let pristine = std::fs::read(&path).expect("read primary");
        let mut fallbacks = 0u32;
        for at in (0..pristine.len()).step_by(3) {
            let mut bytes = pristine.clone();
            bytes[at] ^= 0x4a;
            std::fs::write(&path, &bytes).expect("write corrupted");
            let (cp, recovered) = Checkpoint::load_with_fallback(&path)
                .unwrap_or_else(|e| panic!("flip at byte {at} must recover, got {e}"));
            if recovered {
                assert_eq!(cp, gen0, "fallback must hand back the last good state");
                fallbacks += 1;
            } else {
                assert_eq!(cp, gen1, "an accepted primary must decode unchanged");
            }
        }
        assert!(fallbacks > 0, "the matrix must exercise the fallback path");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hex_words_round_trip() {
        for v in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 1 << 53, (1 << 53) + 1] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v), "{v:#x}");
        }
        assert_eq!(parse_hex64("not hex"), None);
    }
}
