//! Baseline implementation flow and full re-evaluation of modified layouts.
//!
//! Stands in for the commercial P&R backend of the paper's prototype: it
//! turns a benchmark spec into an implemented baseline layout
//! ([`implement_baseline`]) and recomputes every design metric after an ECO
//! operator touched a layout ([`evaluate`]).

use layout::Layout;
use netlist::bench::DesignSpec;
use power::PowerReport;
use route::RoutingState;
use secmetrics::{analyze_regions, RegionAnalysis, THRESH_ER};
use sta::TimingReport;
use tech::Technology;

/// A fully analyzed physical design: layout plus every derived metric.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The (possibly hardened) layout.
    pub layout: Layout,
    /// Committed global routing.
    pub routing: RoutingState,
    /// Timing analysis at the design's clock constraint.
    pub timing: TimingReport,
    /// Power report.
    pub power: PowerReport,
    /// DRC violation count.
    pub drc: u32,
    /// Exploitable-region analysis.
    pub security: RegionAnalysis,
}

impl Snapshot {
    /// TNS in ps (≤ 0; 0 means timing is met).
    pub fn tns_ps(&self) -> f64 {
        self.timing.tns_ps()
    }

    /// Total power in mW.
    pub fn power_mw(&self) -> f64 {
        self.power.total_mw()
    }
}

/// Routes and analyzes `layout`, producing a complete [`Snapshot`].
///
/// Used both for the baseline and after every ECO operator application
/// (the operators change placement and/or the NDR rule; everything
/// downstream is recomputed).
pub fn evaluate(layout: Layout, tech: &Technology) -> Snapshot {
    let routing = route::route_design(&layout, tech);
    let timing = sta::analyze(&layout, &routing, tech);
    let power = power::analyze(&layout, &routing, tech);
    let drc = routing.drc_violations(&layout);
    let security = analyze_regions(&layout, &routing, &timing, tech, THRESH_ER);
    Snapshot {
        layout,
        routing,
        timing,
        power,
        drc,
        security,
    }
}

/// Implements the baseline layout for a benchmark spec: floorplan at the
/// spec's utilization, global placement, wirelength refinement, signal
/// routing, and full analysis.
pub fn implement_baseline(spec: &DesignSpec, tech: &Technology) -> Snapshot {
    let design = netlist::bench::generate(spec, tech);
    let critical = design.critical_cells.clone();
    let mut layout = Layout::empty_floorplan(design, tech, spec.utilization);
    place::global_place(&mut layout, tech, spec.seed);
    place::refine_wirelength(&mut layout, tech, 4, spec.seed);
    // Key registers and key-control logic are banked, as in the ISPD'22
    // security-closure layouts the paper evaluates on; the surrounding
    // logic then re-optimizes around the bank (critical cells pinned).
    place::bank_cells(&mut layout, tech, &critical, 0.85, spec.seed);
    for &c in &critical {
        layout.occupancy_mut().lock(c);
    }
    place::refine_wirelength(&mut layout, tech, 3, spec.seed ^ 0xBA2);
    for &c in &critical {
        layout.occupancy_mut().unlock(c);
    }
    evaluate(layout, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    #[test]
    fn baseline_snapshot_is_complete() {
        let tech = Technology::nangate45_like();
        let snap = implement_baseline(&bench::tiny_spec(), &tech);
        assert!(snap.power_mw() > 0.0);
        assert!(snap.security.er_sites > 0);
        assert!(snap.routing.total_wirelength_um() > 0.0);
        assert!(snap.tns_ps() <= 0.0);
        snap.layout.check_consistency(&tech).unwrap();
    }

    #[test]
    fn evaluate_is_deterministic() {
        let tech = Technology::nangate45_like();
        let a = implement_baseline(&bench::tiny_spec(), &tech);
        let b = implement_baseline(&bench::tiny_spec(), &tech);
        assert_eq!(a.security.er_sites, b.security.er_sites);
        assert_eq!(a.drc, b.drc);
        assert_eq!(a.tns_ps(), b.tns_ps());
        assert_eq!(a.power_mw(), b.power_mw());
    }
}
