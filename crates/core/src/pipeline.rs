//! Baseline implementation flow and full re-evaluation of modified layouts.
//!
//! Stands in for the commercial P&R backend of the paper's prototype: it
//! turns a benchmark spec into an implemented baseline layout
//! ([`implement_baseline`]) and recomputes every design metric after an ECO
//! operator touched a layout ([`evaluate`]).

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use layout::Layout;
use netlist::bench::DesignSpec;
use netlist::NetId;
use power::PowerReport;
use route::RoutingState;
use secmetrics::{analyze_regions, RegionAnalysis, THRESH_ER};

use crate::error::Error;
use crate::flow::OpSelect;
use sta::TimingReport;
use tech::Technology;

/// A fully analyzed physical design: layout plus every derived metric.
///
/// The layout is `Arc`-shared: snapshots that evaluate the same edited
/// layout (e.g. scale-only NSGA-II siblings off one memoized operator
/// edit) alias a single copy, and cloning a snapshot never deep-copies
/// the layout. Use [`Arc::make_mut`] to mutate it in place.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The (possibly hardened) layout.
    pub layout: Arc<Layout>,
    /// Committed global routing.
    pub routing: RoutingState,
    /// Timing analysis at the design's clock constraint.
    pub timing: TimingReport,
    /// Power report.
    pub power: PowerReport,
    /// DRC violation count.
    pub drc: u32,
    /// Exploitable-region analysis.
    pub security: RegionAnalysis,
}

impl Snapshot {
    /// TNS in ps (≤ 0; 0 means timing is met).
    pub fn tns_ps(&self) -> f64 {
        self.timing.tns_ps()
    }

    /// Total power in mW.
    pub fn power_mw(&self) -> f64 {
        self.power.total_mw()
    }
}

/// Routes and analyzes `layout`, producing a complete [`Snapshot`].
///
/// Validates the layout against `tech` first and returns
/// [`Error::InconsistentLayout`] instead of panicking deep inside a
/// routing or timing stage. Callers that build layouts through the flow
/// operators (which preserve consistency by construction) can skip the
/// check with [`evaluate_unchecked`].
pub fn evaluate(layout: impl Into<Arc<Layout>>, tech: &Technology) -> Result<Snapshot, Error> {
    let layout = layout.into();
    layout
        .check_consistency(tech)
        .map_err(Error::InconsistentLayout)?;
    Ok(evaluate_unchecked(layout, tech))
}

/// [`evaluate`] without the consistency pre-check.
///
/// Used both for the baseline and after every ECO operator application
/// (the operators change placement and/or the NDR rule; everything
/// downstream is recomputed).
pub fn evaluate_unchecked(layout: impl Into<Arc<Layout>>, tech: &Technology) -> Snapshot {
    let layout = layout.into();
    obs::span("eval.full", |_| {
        let routing = route::route_design(&layout, tech);
        let timing = sta::analyze(&layout, &routing, tech);
        let power = power::analyze(&layout, &routing, tech);
        let drc = routing.drc_violations(&layout);
        let security = analyze_regions(&layout, &routing, &timing, tech, THRESH_ER);
        Snapshot {
            layout,
            routing,
            timing,
            power,
            drc,
            security,
        }
    })
}

/// Incremental evaluation engine: caches everything about the baseline
/// that ECO operators cannot invalidate, so re-evaluating a candidate
/// costs work proportional to the *edit*, not the chip.
///
/// The cached state is
/// - the baseline [`Snapshot`] itself (reference metrics to patch from),
/// - the Phase-A [`route::RoutePlan`] (congestion-oblivious patterns;
///   only nets incident to moved cells are re-planned),
/// - the levelized [`sta::TimingGraph`] (pure netlist topology), and
/// - the [`power::PowerModel`] (leakage/internal/clock terms).
///
/// [`EvalEngine::evaluate_incremental`] is bit-identical to [`evaluate`]
/// by construction — each stage either reuses a value the edit provably
/// cannot change or recomputes it with the exact full-path formula. The
/// equivalence is asserted by the `incremental_equivalence` proptest
/// suite.
///
/// The engine additionally memoizes ECO *operator* results (see
/// [`crate::flow::FlowRun::engine`]): the placement edit of a candidate
/// depends only on the operator genes and its seed, never on the routing
/// width scales, so a GA population that varies scales around the same
/// operator re-uses one edited layout instead of re-running the operator.
/// The memo also carries the patched Phase-A plan — pattern routes are
/// congestion-oblivious and the grid stores unscaled usage quanta, so the
/// plan too is independent of the width scales; scale-only siblings pay
/// just a plan clone and a capacity re-derivation, never a re-pattern.
#[derive(Debug)]
pub struct EvalEngine {
    base: Snapshot,
    plan: route::RoutePlan,
    graph: sta::TimingGraph,
    power_model: power::PowerModel,
    /// Both caches are read-mostly once warm (a replayed or converged
    /// population is nearly all hits), so they sit behind `RwLock`:
    /// concurrent hit lookups share the lock instead of convoying on a
    /// `Mutex`, which matters when the evaluation loop oversubscribes the
    /// machine and a preempted lock holder stalls every other worker.
    edit_cache: RwLock<EditCache>,
    metrics_memo: RwLock<HashMap<EvalKey, crate::flow::FlowMetrics>>,
    /// Byte budget of the edit cache (`GG_EVAL_CACHE_BYTES`, read at
    /// construction). Entries are LRU-evicted once their accounted
    /// unshared bytes exceed this.
    cache_budget: u64,
    /// Monotonic access clock driving LRU eviction; bumped on every
    /// edit-cache hit and insert without taking the write lock.
    clock: std::sync::atomic::AtomicU64,
    /// Mirrors of the two caches' accounted bytes, so either path can
    /// republish the combined `eval.cache_bytes` gauge without the
    /// other's lock.
    edit_bytes_now: std::sync::atomic::AtomicU64,
    memo_bytes_now: std::sync::atomic::AtomicU64,
}

/// The operator-edit cache: memoized [`CowSnapshot`]s plus the running
/// total of their accounted unshared bytes.
#[derive(Debug, Default)]
struct EditCache {
    map: HashMap<(OpSelect, u64), EditEntry>,
    /// Sum of every entry's `bytes`.
    bytes: u64,
}

/// One cached operator edit with its byte accounting and LRU stamp.
#[derive(Debug)]
struct EditEntry {
    snap: CowSnapshot,
    /// Unshared-with-baseline bytes this entry pins (what evicting it
    /// approximately frees).
    bytes: u64,
    /// Engine clock value of the last hit or the insert; atomic so the
    /// hit path stamps it under the read lock.
    last_used: std::sync::atomic::AtomicU64,
}

/// Key of one memoized end-to-end evaluation: the operator, the seed it
/// actually consumes (normalized away for seedless operators), and the
/// route-rule scale bits. The full flow is a pure function of this
/// triple — the operator edit depends only on `(op, seed)`, and
/// everything downstream (Phase B, STA, power, DRC, security) depends
/// only on the edited layout plus the installed rule — so two candidates
/// with equal keys provably produce identical [`crate::flow::FlowMetrics`].
/// NSGA-II populations revisit such semantic duplicates constantly
/// (distinct genomes collapse to one key when the operator ignores its
/// seed), which the genome-level cache upstream cannot see.
pub(crate) type EvalKey = (OpSelect, u64, [u64; tech::NUM_METAL_LAYERS]);

/// Bound on memoized evaluation results (a key plus a
/// [`crate::flow::FlowMetrics`] is ~130 bytes, so this caps the memo at a
/// few megabytes while comfortably covering a full exploration).
const METRICS_MEMO_CAP: usize = 65_536;

/// Copy-on-write view of a memoized operator edit: the post-operator
/// layout (still at the baseline's route rule) and its patched Phase-A
/// plan, both `Arc`-shared with the [`EvalEngine`] cache.
///
/// Handing one out costs two refcount bumps instead of the deep
/// layout-plus-plan clone the cache used to pay per hit; a candidate only
/// materializes private copies — and only of the pieces that actually
/// diverge — when it installs a different route rule via
/// [`CowSnapshot::into_parts`].
#[derive(Debug, Clone)]
pub struct CowSnapshot {
    layout: Arc<Layout>,
    plan: Arc<route::RoutePlan>,
    /// Sorted net ids the Phase-A patch re-planned for this edit (the
    /// operator's dirty set). Everything else carries the baseline's
    /// pattern segments by `Arc` share.
    dirty: Arc<Vec<NetId>>,
}

impl CowSnapshot {
    /// The shared post-operator layout, at the baseline's route rule.
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// The sorted net ids the Phase-A patch re-planned for this edit.
    /// Feeds the incremental-STA dirty handoff in
    /// [`EvalEngine::evaluate_with_plan`].
    pub(crate) fn phase_a_dirty(&self) -> Arc<Vec<NetId>> {
        Arc::clone(&self.dirty)
    }

    /// The shared patched Phase-A plan, at the baseline's route rule.
    pub fn plan(&self) -> &route::RoutePlan {
        &self.plan
    }

    /// Materializes the `(layout, plan)` pair under `rule`.
    ///
    /// When `rule` matches the cached layout's rule (a scale-identical
    /// sibling) both halves stay shared: the layout is an `Arc` bump and
    /// the plan clone is itself refcount bumps per net list and usage
    /// plane. When the rule differs, the layout is copied once to install
    /// it and the plan re-derives capacities — stored usage is unscaled
    /// quanta, so the patched plan stays exact under the new rule.
    pub fn into_parts(
        self,
        tech: &Technology,
        rule: &tech::RouteRule,
    ) -> (Arc<Layout>, route::RoutePlan) {
        let CowSnapshot { layout, plan, .. } = self;
        if layout.route_rule() == rule {
            return (layout, (*plan).clone());
        }
        let mut l = (*layout).clone();
        l.set_route_rule(rule.clone());
        let mut p = (*plan).clone();
        p.set_rule(tech, rule);
        (Arc::new(l), p)
    }
}

/// Bound on memoized operator edits; a GA run touches a handful of
/// distinct `(operator, seed)` pairs, so this only guards pathological
/// callers from unbounded growth. The byte budget
/// (`GG_EVAL_CACHE_BYTES`) usually binds first on big designs.
const EDIT_CACHE_CAP: usize = 64;

/// Default edit-cache byte budget when `GG_EVAL_CACHE_BYTES` is unset:
/// generous enough that a TINY-class exploration never evicts, small
/// enough that a long explore on a 100k-cell design stays bounded.
const EVAL_CACHE_BYTES_DEFAULT: u64 = 256 << 20;

/// Approximate resident bytes of one metrics-memo entry (key + value +
/// `HashMap` slot overhead).
const MEMO_ENTRY_BYTES: u64 =
    (size_of::<EvalKey>() + size_of::<crate::flow::FlowMetrics>() + 2 * size_of::<u64>()) as u64;

/// Point-in-time byte footprint of an [`EvalEngine`], as surfaced by
/// `ggd stats` and the bench suite (see
/// [`EvalEngine::memory_footprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Resident bytes of the baseline layout's occupancy index.
    pub occupancy_bytes: u64,
    /// Usage-plane pages held by the baseline routing plus the Phase-A
    /// plan (Arc-deduplicated).
    pub route_planes_bytes: u64,
    /// Accounted bytes of the operator-edit cache and metrics memo.
    pub cache_bytes: u64,
}

/// Registry handles for the operator-edit cache, resolved once.
struct CacheMetrics {
    hits: obs::Counter,
    misses: obs::Counter,
    memo_hits: obs::Counter,
    /// Entries dropped by the byte-budget / capacity LRU.
    evictions: obs::Counter,
    /// Accounted bytes across the edit cache and metrics memo.
    bytes: obs::Gauge,
}

fn cache_metrics() -> &'static CacheMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: obs::counter("eval.cache_hits"),
        misses: obs::counter("eval.cache_misses"),
        memo_hits: obs::counter("eval.memo_hits"),
        evictions: obs::counter("eval.cache_evictions"),
        bytes: obs::gauge("eval.cache_bytes"),
    })
}

/// Registry handles for the per-design memory-footprint gauges.
struct MemMetrics {
    occupancy: obs::Gauge,
    route_planes: obs::Gauge,
}

fn mem_metrics() -> &'static MemMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<MemMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MemMetrics {
        occupancy: obs::gauge("mem.occupancy_bytes"),
        route_planes: obs::gauge("mem.route_planes_bytes"),
    })
}

/// Injection point covering the engine's memoized-edit path: checked before
/// the cache lookup, so a drill exercises the sandbox without ever holding
/// (and poisoning) the edit-cache lock.
static EVAL_PANIC: faults::Point = faults::Point::new("eval.panic");

impl EvalEngine {
    /// Builds the engine's caches from an implemented baseline.
    ///
    /// Reads `GG_EVAL_CACHE_BYTES` (bytes, decimal) as the edit-cache
    /// byte budget; unset or unparsable falls back to the 256 MiB
    /// default. Publishes the baseline's `mem.occupancy_bytes` /
    /// `mem.route_planes_bytes` gauges.
    pub fn new(base: &Snapshot, tech: &Technology) -> Self {
        let cache_budget = std::env::var("GG_EVAL_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(EVAL_CACHE_BYTES_DEFAULT);
        let engine = Self {
            base: base.clone(),
            plan: route::plan_route(&base.layout, tech),
            graph: sta::TimingGraph::new(base.layout.design(), tech),
            power_model: power::PowerModel::new(&base.layout, tech),
            edit_cache: RwLock::new(EditCache::default()),
            metrics_memo: RwLock::new(HashMap::new()),
            cache_budget,
            clock: std::sync::atomic::AtomicU64::new(0),
            edit_bytes_now: std::sync::atomic::AtomicU64::new(0),
            memo_bytes_now: std::sync::atomic::AtomicU64::new(0),
        };
        engine.publish_memory_gauges();
        engine
    }

    /// Publishes this engine's memory-footprint gauges: the baseline
    /// occupancy's resident bytes, the usage-plane pages held by the
    /// baseline routing plus the Phase-A plan, and the accounted bytes
    /// of the two candidate caches.
    pub fn publish_memory_gauges(&self) {
        use std::sync::atomic::Ordering;
        let m = mem_metrics();
        m.occupancy
            .set(self.base.layout.occupancy().occupancy_bytes() as f64);
        m.route_planes.set(
            (self.base.routing.grid().planes_bytes() + self.plan.grid().planes_bytes()) as f64,
        );
        cache_metrics().bytes.set(
            (self.edit_bytes_now.load(Ordering::Relaxed)
                + self.memo_bytes_now.load(Ordering::Relaxed)) as f64,
        );
    }

    /// The engine's current byte footprint, read directly from the
    /// structures — unlike the gauges, this works with telemetry
    /// disabled, so `ggd stats` can always report it.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::sync::atomic::Ordering;
        MemoryFootprint {
            occupancy_bytes: self.base.layout.occupancy().occupancy_bytes(),
            route_planes_bytes: self.base.routing.grid().planes_bytes()
                + self.plan.grid().planes_bytes(),
            cache_bytes: self.edit_bytes_now.load(Ordering::Relaxed)
                + self.memo_bytes_now.load(Ordering::Relaxed),
        }
    }

    /// Republishes `eval.cache_bytes` from the two byte mirrors.
    fn publish_cache_bytes(&self) {
        use std::sync::atomic::Ordering;
        cache_metrics().bytes.set(
            (self.edit_bytes_now.load(Ordering::Relaxed)
                + self.memo_bytes_now.load(Ordering::Relaxed)) as f64,
        );
    }

    /// Looks up the memoized metrics of a semantically identical earlier
    /// evaluation. A poisoned memo lock degrades to a miss — the caller
    /// recomputes, which is always safe.
    pub(crate) fn memoized_metrics(&self, key: &EvalKey) -> Option<crate::flow::FlowMetrics> {
        let hit = self.metrics_memo.read().ok()?.get(key).copied();
        if hit.is_some() {
            cache_metrics().memo_hits.incr();
        }
        hit
    }

    /// Records a computed evaluation result under its key (bounded by
    /// [`METRICS_MEMO_CAP`]; a poisoned lock silently drops the entry).
    pub(crate) fn memoize_metrics(&self, key: EvalKey, m: crate::flow::FlowMetrics) {
        if let Ok(mut memo) = self.metrics_memo.write() {
            if memo.len() < METRICS_MEMO_CAP {
                memo.insert(key, m);
                self.memo_bytes_now.store(
                    memo.len() as u64 * MEMO_ENTRY_BYTES,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        }
        self.publish_cache_bytes();
    }

    /// Drops every memoized evaluation result while keeping the heavier
    /// structural caches (operator edits, Phase-A plan, timing graph).
    ///
    /// Measurement harnesses call this between repetitions so a repeated
    /// schedule is re-evaluated honestly instead of served from the memo.
    pub fn reset_metrics_memo(&self) {
        if let Ok(mut memo) = self.metrics_memo.write() {
            memo.clear();
            self.memo_bytes_now
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
        self.publish_cache_bytes();
    }

    /// Looks up the memoized [`CowSnapshot`] of an operator edit, or
    /// computes it with `make` and stores it. `seed` must be the exact
    /// seed the operator consumes (callers normalize it away for seedless
    /// operators). The snapshot is at the baseline's route rule; callers
    /// materialize their own rule via [`CowSnapshot::into_parts`]. Both
    /// the hit and the miss path hand out `Arc` shares — the cache never
    /// deep-copies a layout or plan.
    ///
    /// Returns [`Error::EditCachePoisoned`] if a worker panicked while
    /// holding the cache lock; memoized edits are untrusted from then on.
    pub(crate) fn cached_edit(
        &self,
        tech: &Technology,
        op: OpSelect,
        seed: u64,
        make: impl FnOnce() -> Layout,
    ) -> Result<CowSnapshot, Error> {
        use std::sync::atomic::Ordering;
        EVAL_PANIC.check();
        let m = cache_metrics();
        if let Some(hit) = self
            .edit_cache
            .read()
            .map_err(|_| Error::EditCachePoisoned)?
            .map
            .get(&(op, seed))
        {
            m.hits.incr();
            // LRU stamp under the read lock: the clock is engine-global
            // and the stamp is atomic, so hits never serialize.
            hit.last_used.store(
                self.clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            return Ok(hit.snap.clone());
        }
        m.misses.incr();
        // Computed outside the lock: a racing duplicate costs one extra
        // operator run but never blocks the other workers on it.
        let layout = make();
        let dirty = route::dirty_between(&self.plan, &self.base.layout, &layout, tech);
        let plan = route::plan_update(&self.plan, &layout, tech, &dirty);
        let entry = CowSnapshot {
            layout: Arc::new(layout),
            plan: Arc::new(plan),
            dirty: Arc::new(dirty.nets),
        };
        // Byte accounting: what this entry pins beyond the baseline the
        // engine holds anyway (copy-on-write shards/pages/segment lists
        // it owns privately).
        let bytes = entry
            .layout
            .occupancy()
            .unshared_bytes(self.base.layout.occupancy())
            + entry.plan.approx_unshared_bytes(&self.plan)
            + (entry.dirty.capacity() * size_of::<NetId>()) as u64;
        let mut cache = self
            .edit_cache
            .write()
            .map_err(|_| Error::EditCachePoisoned)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        cache.bytes += bytes;
        if let Some(old) = cache.map.insert(
            (op, seed),
            EditEntry {
                snap: entry.clone(),
                bytes,
                last_used: std::sync::atomic::AtomicU64::new(stamp),
            },
        ) {
            // Racing duplicate: the loser's bytes leave the account.
            cache.bytes -= old.bytes;
        }
        // LRU eviction under the byte budget (`GG_EVAL_CACHE_BYTES`) and
        // the entry-count backstop. The entry just inserted carries the
        // freshest stamp, so it is evicted only if it alone exceeds the
        // budget — and even then the handle already returned keeps it
        // alive for the caller.
        while cache.map.len() > 1
            && (cache.bytes > self.cache_budget || cache.map.len() > EDIT_CACHE_CAP)
        {
            let victim = cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("non-empty cache has an LRU entry");
            let evicted = cache.map.remove(&victim).expect("victim key just observed");
            cache.bytes -= evicted.bytes;
            m.evictions.incr();
        }
        self.edit_bytes_now.store(cache.bytes, Ordering::Relaxed);
        drop(cache);
        self.publish_cache_bytes();
        Ok(entry)
    }

    /// Overrides the edit-cache byte budget, bypassing
    /// `GG_EVAL_CACHE_BYTES` (tests can't set process env without racing
    /// parallel tests).
    #[doc(hidden)]
    pub fn set_cache_budget_for_tests(&mut self, bytes: u64) {
        self.cache_budget = bytes;
    }

    /// The baseline snapshot the engine was built from.
    pub fn base(&self) -> &Snapshot {
        &self.base
    }

    /// The cached Phase-A route plan of the baseline.
    pub fn plan(&self) -> &route::RoutePlan {
        &self.plan
    }

    /// The cached levelized timing graph.
    pub fn graph(&self) -> &sta::TimingGraph {
        &self.graph
    }

    /// Re-evaluates an edited layout, recomputing only what the edit
    /// dirtied. Produces the same [`Snapshot`] as [`evaluate`], bit for
    /// bit.
    pub fn evaluate_incremental(
        &self,
        layout: impl Into<Arc<Layout>>,
        tech: &Technology,
    ) -> Snapshot {
        let layout = layout.into();
        obs::span("eval.incremental", |_| {
            let dirty = route::dirty_between(&self.plan, &self.base.layout, &layout, tech);
            let plan = route::plan_update(&self.plan, &layout, tech, &dirty);
            self.evaluate_with_plan(layout, plan, tech, &dirty.nets)
        })
    }

    /// Evaluation tail shared by [`EvalEngine::evaluate_incremental`] and
    /// the memoized-edit path: Phase B on an already-patched plan, then
    /// incremental STA and the model-backed analyses.
    ///
    /// `phase_a_dirty` is the sorted net list the Phase-A patch
    /// re-planned for this candidate. When the candidate keeps the
    /// baseline's route rule, the RC of any net outside
    /// `phase_a_dirty ∪ candidate RRR victims ∪ baseline RRR victims`
    /// provably equals the baseline's — such a net carries the same
    /// `Arc`-shared pattern segments on both sides and identical track
    /// scales — so that union is handed to [`sta::analyze_incremental`]
    /// as the `dirty_nets` bound. A rule change moves every net's RC and
    /// disables the bound (see DESIGN.md §2d).
    pub(crate) fn evaluate_with_plan(
        &self,
        layout: Arc<Layout>,
        plan: route::RoutePlan,
        tech: &Technology,
        phase_a_dirty: &[NetId],
    ) -> Snapshot {
        let routing = route::finalize_route(&layout, tech, plan);
        let dirty_nets: Option<Vec<NetId>> = if layout.route_rule() == self.base.layout.route_rule()
        {
            let mut v: Vec<NetId> = phase_a_dirty
                .iter()
                .chain(routing.touched_nets())
                .chain(self.base.routing.touched_nets())
                .copied()
                .collect();
            v.sort_unstable();
            v.dedup();
            Some(v)
        } else {
            None
        };
        let timing = sta::analyze_incremental(
            &self.graph,
            &self.base.timing,
            &self.base.routing,
            &layout,
            &routing,
            tech,
            dirty_nets.as_deref(),
        );
        let power = power::analyze_with_model(&self.power_model, &layout, &routing, tech);
        let drc = routing.drc_violations(&layout);
        let security = analyze_regions(&layout, &routing, &timing, tech, THRESH_ER);
        Snapshot {
            layout,
            routing,
            timing,
            power,
            drc,
            security,
        }
    }
}

/// Implements the baseline layout for a benchmark spec: floorplan at the
/// spec's utilization, global placement, wirelength refinement, signal
/// routing, and full analysis.
///
/// Validates the implemented layout before evaluation and returns
/// [`Error::InconsistentLayout`] if the placement stages ever produce an
/// illegal layout (a bug, but one that now surfaces as a typed error at
/// the API boundary instead of a panic in a downstream stage).
pub fn implement_baseline(spec: &DesignSpec, tech: &Technology) -> Result<Snapshot, Error> {
    obs::span("baseline.implement", |_| {
        let layout = build_baseline_layout(spec, tech);
        evaluate(layout, tech)
    })
}

/// [`implement_baseline`] without the consistency check, for callers that
/// cannot do anything useful with the error anyway (benches, examples).
pub fn implement_baseline_unchecked(spec: &DesignSpec, tech: &Technology) -> Snapshot {
    obs::span("baseline.implement", |_| {
        let layout = build_baseline_layout(spec, tech);
        evaluate_unchecked(layout, tech)
    })
}

fn build_baseline_layout(spec: &DesignSpec, tech: &Technology) -> Layout {
    let design = netlist::bench::generate(spec, tech);
    let critical = design.critical_cells.clone();
    let mut layout = Layout::empty_floorplan(design, tech, spec.utilization);
    place::global_place(&mut layout, tech, spec.seed);
    place::refine_wirelength(&mut layout, tech, 4, spec.seed);
    // Key registers and key-control logic are banked, as in the ISPD'22
    // security-closure layouts the paper evaluates on; the surrounding
    // logic then re-optimizes around the bank (critical cells pinned).
    place::bank_cells(&mut layout, tech, &critical, 0.85, spec.seed);
    for &c in &critical {
        layout.occupancy_mut().lock(c);
    }
    place::refine_wirelength(&mut layout, tech, 3, spec.seed ^ 0xBA2);
    for &c in &critical {
        layout.occupancy_mut().unlock(c);
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    #[test]
    fn baseline_snapshot_is_complete() {
        let tech = Technology::nangate45_like();
        // The fallible path validates consistency itself, so a returned
        // snapshot is a consistent one by contract.
        let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        assert!(snap.power_mw() > 0.0);
        assert!(snap.security.er_sites > 0);
        assert!(snap.routing.total_wirelength_um() > 0.0);
        assert!(snap.tns_ps() <= 0.0);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let tech = Technology::nangate45_like();
        let a = implement_baseline_unchecked(&bench::tiny_spec(), &tech);
        let b = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        assert_eq!(a.security.er_sites, b.security.er_sites);
        assert_eq!(a.drc, b.drc);
        assert_eq!(a.tns_ps(), b.tns_ps());
        assert_eq!(a.power_mw(), b.power_mw());
    }

    /// A layout that fails consistency is rejected with a typed error at
    /// the API boundary, never a panic downstream.
    #[test]
    fn evaluate_rejects_inconsistent_layouts() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let mut broken = Layout::clone(&base.layout);
        // Re-place a cell one site wider than its master: the occupancy
        // grid accepts the footprint, but it no longer matches the
        // library, which is exactly what the consistency check polices.
        let cell = netlist::CellId(0);
        let w = broken.occupancy().cell_width(cell).unwrap();
        broken.occupancy_mut().remove_cell(cell).unwrap();
        let gap = broken
            .occupancy()
            .find_gap(
                w + 1,
                geom::SitePos::new(0, 0),
                broken.floorplan().rows() + broken.floorplan().cols(),
            )
            .expect("tiny fixture leaves free runs");
        broken.occupancy_mut().place_cell(cell, w + 1, gap).unwrap();
        match evaluate(broken, &tech) {
            Err(Error::InconsistentLayout(why)) => assert!(!why.is_empty()),
            other => panic!("expected InconsistentLayout, got {other:?}"),
        }
    }

    /// The edit cache must share, not copy — and handing out shares must
    /// not leak: once every candidate's handle drops, the cache entry is
    /// the sole remaining owner of the layout and plan.
    #[test]
    fn cached_edit_shares_and_does_not_leak() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let engine = EvalEngine::new(&base, &tech);
        let op = OpSelect::CellShift;
        let make = || {
            let mut l = Layout::clone(&base.layout);
            crate::preprocess::lock_critical_cells(&mut l);
            crate::cell_shift::cell_shift(&mut l, &tech, secmetrics::THRESH_ER);
            l
        };

        // A hit is a share of the miss, not a recomputation.
        let first = engine.cached_edit(&tech, op, 1, make).unwrap();
        let second = engine
            .cached_edit(&tech, op, 1, || unreachable!("must hit the cache"))
            .unwrap();
        assert!(Arc::ptr_eq(first.layout(), second.layout()));

        // Rule-identical materialization keeps the layout shared.
        let base_rule = first.layout().route_rule().clone();
        let (same, _plan) = second.into_parts(&tech, &base_rule);
        assert!(Arc::ptr_eq(first.layout(), &same));

        // A diverging rule copies privately and leaves the cache intact.
        let wide = tech::RouteRule::uniform(1.2);
        let third = engine
            .cached_edit(&tech, op, 1, || unreachable!("must hit the cache"))
            .unwrap();
        let (copied, _plan) = third.clone().into_parts(&tech, &wide);
        assert!(!Arc::ptr_eq(first.layout(), &copied));
        assert_eq!(copied.route_rule(), &wide);
        assert!(Arc::ptr_eq(first.layout(), third.layout()));

        // No leak: dropping every handle leaves the cache entry plus the
        // one probe below as the only owners.
        drop((same, copied, third));
        let probe = engine
            .cached_edit(&tech, op, 1, || unreachable!("must hit the cache"))
            .unwrap();
        drop(first);
        assert_eq!(Arc::strong_count(probe.layout()), 2);
        assert_eq!(Arc::strong_count(&probe.plan), 2);
    }

    /// Under a starvation-level byte budget the cache LRU-evicts down to
    /// one entry per insert, and an evicted edit recomputes (a miss)
    /// instead of erroring. Handed-out snapshots survive eviction: the
    /// caller's `Arc` keeps the layout alive.
    #[test]
    fn edit_cache_byte_budget_evicts_lru() {
        let tech = Technology::nangate45_like();
        let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
        let mut engine = EvalEngine::new(&base, &tech);
        engine.set_cache_budget_for_tests(1);
        let make = || {
            let mut l = Layout::clone(&base.layout);
            crate::preprocess::lock_critical_cells(&mut l);
            crate::cell_shift::cell_shift(&mut l, &tech, secmetrics::THRESH_ER);
            l
        };
        let op = OpSelect::CellShift;
        let a = engine.cached_edit(&tech, op, 1, make).unwrap();
        // Inserting a second edit blows the 1-byte budget and evicts the
        // first (older LRU stamp).
        let _b = engine.cached_edit(&tech, op, 2, make).unwrap();
        // Seed 1 is gone: this lookup must recompute, not hit.
        let recomputed = std::cell::Cell::new(false);
        let a2 = engine
            .cached_edit(&tech, op, 1, || {
                recomputed.set(true);
                make()
            })
            .unwrap();
        assert!(recomputed.get(), "evicted entry must miss");
        // Determinism: the recomputation reproduces the same edit even
        // though the cache forgot it; the old handle stays valid.
        assert_eq!(
            a.layout().occupancy().occupied_sites(),
            a2.layout().occupancy().occupied_sites()
        );
        assert!(!Arc::ptr_eq(a.layout(), a2.layout()));
    }
}
