//! **Routing Width Scaling (RWS)** — anti-Trojan ECO routing operator.
//!
//! GDSII-Guard edits the non-default rule (NDR) and selectively widens the
//! routing wires of individual metal layers (§III-C). Wider nets consume
//! extra track pitch — shrinking the free tracks a Trojan could route on —
//! while simultaneously lowering wire resistance, which can *improve*
//! timing on long nets. The trade-off per layer is explored by the flow
//! optimizer; this module just installs the rule (the effect materializes
//! at the re-route in [`crate::pipeline::evaluate`]).

use layout::Layout;
use tech::{RouteRule, NUM_METAL_LAYERS};

/// Installs per-layer width scale factors on the layout's NDR.
///
/// # Panics
///
/// Panics if any factor is below 1.0.
pub fn apply_width_scaling(layout: &mut Layout, scales: [f64; NUM_METAL_LAYERS]) {
    layout.set_route_rule(RouteRule::from_scales(scales));
}

/// Convenience: scale every layer by the same factor.
pub fn apply_uniform_scaling(layout: &mut Layout, s: f64) {
    layout.set_route_rule(RouteRule::uniform(s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;
    use tech::Technology;

    #[test]
    fn install_and_reroute_changes_free_tracks() {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 61);
        let base = route::route_design(&layout, &tech);
        apply_uniform_scaling(&mut layout, 1.5);
        let wide = route::route_design(&layout, &tech);
        let sum = |r: &route::RoutingState| -> f64 {
            let g = r.grid();
            let mut t = 0.0;
            for y in 0..g.ny() {
                for x in 0..g.nx() {
                    t += g.free_tracks_all_layers(geom::GcellPos::new(x, y));
                }
            }
            t
        };
        assert!(sum(&wide) < sum(&base));
    }

    #[test]
    fn per_layer_rule_reaches_the_layout() {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        let mut scales = [1.0; NUM_METAL_LAYERS];
        scales[6] = 1.5; // widen M7 only
        apply_width_scaling(&mut layout, scales);
        assert_eq!(layout.route_rule().scale(7), 1.5);
        assert_eq!(layout.route_rule().scale(2), 1.0);
    }
}
