//! Calibration probe: baseline metrics of all twelve designs.
use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>6} {:>9} {:>10} {:>8}",
        "design", "cells", "tns_ps", "wns_ps", "power_mw", "drc", "er_sites", "er_tracks", "secs"
    );
    for spec in bench::all_specs() {
        let t0 = std::time::Instant::now();
        let snap = implement_baseline(&spec, &tech).unwrap();
        println!(
            "{:<14} {:>7} {:>9.1} {:>9.1} {:>9.3} {:>6} {:>9} {:>10.1} {:>8.2}",
            spec.name,
            snap.layout.design().cells.len(),
            snap.tns_ps(),
            snap.timing.wns_ps(),
            snap.power_mw(),
            snap.drc,
            snap.security.er_sites,
            snap.security.er_tracks,
            t0.elapsed().as_secs_f64()
        );
    }
}
