use gdsii_guard::prelude::*;
use geom::GcellPos;
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    for name in ["AES_2", "AES_3"] {
        let spec = bench::spec_by_name(name).unwrap();
        let snap = implement_baseline(&spec, &tech).unwrap();
        let g = snap.routing.grid();
        let (nx, ny) = (g.nx(), g.ny());
        let mut used_h = 0.0;
        let mut used_v = 0.0;
        let mut cap_h = 0.0;
        let mut cap_v = 0.0;
        for m in 2..=10 {
            let cap = g.capacity(m);
            let is_h = matches!(g.dir(m), tech::LayerDir::Horizontal);
            for y in 0..ny {
                for x in 0..nx {
                    let u = g.usage(m, GcellPos::new(x, y));
                    if is_h {
                        used_h += u;
                        cap_h += cap;
                    } else {
                        used_v += u;
                        cap_v += cap;
                    }
                }
            }
        }
        println!("{name}: grid {nx}x{ny} wl {:.0}um overflow_pairs {} total_overflow {:.0} H {:.2} V {:.2} hpwl? cells {}",
            snap.routing.total_wirelength_um(), g.overflow_pairs(), g.total_overflow(),
            used_h/cap_h, used_v/cap_v, snap.layout.design().cells.len());
        // per-layer usage ratio
        for m in 2..=10 {
            let cap = g.capacity(m);
            let mut u = 0.0;
            let mut of = 0;
            for y in 0..ny {
                for x in 0..nx {
                    let uu = g.usage(m, GcellPos::new(x, y));
                    u += uu;
                    if uu > cap + 1e-9 {
                        of += 1;
                    }
                }
            }
            println!(
                "  M{m}: cap {cap} avg_use {:.2} overflow_gcells {of}",
                u / (nx * ny) as f64
            );
        }
    }
}
