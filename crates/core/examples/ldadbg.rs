use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    for name in ["CAST", "openMSP430_2"] {
        let spec = bench::spec_by_name(name).unwrap();
        let base = implement_baseline(&spec, &tech).unwrap();
        println!(
            "{name}: base er_sites {} er_tracks {:.0} tns {:.0} dist_mean {:.0}um",
            base.security.er_sites,
            base.security.er_tracks,
            base.tns_ps(),
            base.security
                .distances
                .iter()
                .map(|(_, d)| *d as f64 / 1000.0)
                .sum::<f64>()
                / base.security.distances.len() as f64
        );
        {
            // who are the capped cells?
            let routing = &base.routing;
            let _ = routing;
            let timing = &base.timing;
            let cap = base.layout.floorplan().core_rect();
            let capd = cap.width().max(cap.height());
            for &(c, d) in &base.security.distances {
                if d >= capd {
                    let cell = base.layout.design().cell(c);
                    let k = tech.library.kind(cell.kind);
                    let out_slack = cell.output.map(|o| timing.net_slack_ps(o));
                    println!(
                        "    capped: cell {} kind {} out_slack {:?}",
                        c.0, k.name, out_slack
                    );
                }
            }
            let mut ds: Vec<i64> = base.security.distances.iter().map(|(_, d)| *d).collect();
            ds.sort();
            let n = ds.len();
            println!(
                "  dist um: min {:.0} p50 {:.0} p90 {:.0} max {:.0}; count {}",
                ds[0] as f64 / 1000.0,
                ds[n / 2] as f64 / 1000.0,
                ds[n * 9 / 10] as f64 / 1000.0,
                ds[n - 1] as f64 / 1000.0,
                n
            );
            // Critical-cell spread and mask coverage.
            let crit = &base.layout.design().critical_cells;
            let pts: Vec<geom::Point> = crit
                .iter()
                .map(|&c| base.layout.cell_center(c, &tech))
                .collect();
            let lo = pts.iter().fold(pts[0], |a, &b| a.min(b));
            let hi = pts.iter().fold(pts[0], |a, &b| a.max(b));
            let core = base.layout.floorplan().core_rect();
            // mask coverage: fraction of free sites that are exploitable-eligible
            let mut free = 0u64;
            for r in 0..base.layout.floorplan().rows() {
                for run in base.layout.occupancy().empty_runs(r) {
                    free += run.len() as u64;
                }
            }
            println!(
                "  crit bbox {:.0}x{:.0}um of core {:.0}x{:.0}um; free {} er_sites {} ({:.0}%)",
                (hi.x - lo.x) as f64 / 1000.0,
                (hi.y - lo.y) as f64 / 1000.0,
                core.width() as f64 / 1000.0,
                core.height() as f64 / 1000.0,
                free,
                base.security.er_sites,
                100.0 * base.security.er_sites as f64 / free as f64
            );
        }
        for (n, it) in [(4u32, 1u32), (8, 1), (16, 1), (8, 2)] {
            let cfg = FlowConfig {
                op: OpSelect::Lda { n, n_iter: it },
                scales: [1.0; 10],
            };
            let m = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
            println!(
                "  LDA n={n} it={it}: sec {:.3} sites {} tracks {:.0} tns {:.0}",
                m.security, m.er_sites, m.er_tracks, m.tns_ps
            );
        }
    }
}
