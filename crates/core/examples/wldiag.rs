use layout::Layout;
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    let spec = bench::spec_by_name("AES_1").unwrap();
    let design = bench::generate(&spec, &tech);
    let mut layout = Layout::empty_floorplan(design, &tech, spec.utilization);
    place::global_place(&mut layout, &tech, spec.seed);
    println!("h0 {:.0}", place::hpwl_total(&layout, &tech));
    for i in 0..10 {
        let moves = place::refine_wirelength(&mut layout, &tech, 1, spec.seed + i);
        println!(
            "iter {i}: hpwl {:.0} moves {moves}",
            place::hpwl_total(&layout, &tech)
        );
    }
}
