use gdsii_guard::cell_shift::cell_shift;
use geom::Interval;
use layout::Layout;
use netlist::bench;
use tech::Technology;

fn exploitable(layout: &Layout, thresh: u32) -> (u64, usize) {
    let rows = layout.floorplan().rows();
    let mut verts: Vec<(u32, Interval)> = Vec::new();
    let mut rs: Vec<usize> = vec![0];
    for r in 0..rows {
        for run in layout.occupancy().empty_runs(r) {
            verts.push((r, run));
        }
        rs.push(verts.len());
    }
    let mut parent: Vec<u32> = (0..verts.len() as u32).collect();
    fn find(p: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while p[r as usize] != r {
            r = p[r as usize];
        }
        r
    }
    for r in 1..rows as usize {
        let (mut i, mut j) = (rs[r - 1], rs[r]);
        while i < rs[r] && j < rs[r + 1] {
            let (ia, ib) = (verts[i].1, verts[j].1);
            if ia.overlaps(&ib) {
                let (ra, rb) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                if ra != rb {
                    parent[ra as usize] = rb;
                }
            }
            if ia.hi <= ib.hi {
                i += 1
            } else {
                j += 1
            }
        }
    }
    let mut w = vec![0u64; verts.len()];
    for (i, v) in verts.iter().enumerate() {
        let r = find(&mut parent, i as u32);
        w[r as usize] += v.1.len() as u64;
    }
    let mut sites = 0;
    let mut n = 0;
    for i in 0..verts.len() {
        if parent[i] == i as u32 && w[i] >= thresh as u64 {
            sites += w[i];
            n += 1;
        }
    }
    (sites, n)
}

fn main() {
    let tech = Technology::nangate45_like();
    for util in [0.60, 0.68, 0.72, 0.76] {
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, util);
        place::global_place(&mut layout, &tech, 23);
        place::refine_wirelength(&mut layout, &tech, 2, 23);
        let before = exploitable(&layout, 20);
        let s1 = cell_shift(&mut layout, &tech, 20);
        let after1 = exploitable(&layout, 20);
        let s2 = cell_shift(&mut layout, &tech, 20);
        let after2 = exploitable(&layout, 20);
        println!(
            "util {util}: before {before:?} after1 {after1:?} (moves {}, shifts {}) after2 {after2:?} (shifts {})",
            s1.moves, s1.shifted_sites, s2.shifted_sites
        );
    }
}
