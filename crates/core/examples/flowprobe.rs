use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    println!(
        "{:<14} {:>8} | CS: {:>6} {:>8} | LDA8x2: {:>6} {:>8}",
        "design", "base_er", "sec", "tns", "sec", "tns"
    );
    for spec in bench::all_specs() {
        let base = implement_baseline(&spec, &tech).unwrap();
        let cs = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
            .unchecked()
            .metrics();
        let lda = FlowRun::new(
            &base,
            &tech,
            &FlowConfig {
                op: OpSelect::Lda { n: 8, n_iter: 2 },
                scales: [1.0; 10],
            },
        )
        .unchecked()
        .metrics();
        println!(
            "{:<14} {:>8} | {:>10.3} {:>8.0} | {:>10.3} {:>8.0}",
            spec.name, base.security.er_sites, cs.security, cs.tns_ps, lda.security, lda.tns_ps
        );
    }
}
