//! GDSII stream-format I/O and layout export.
//!
//! The paper's threat model begins "right after tapeout \[when\] the attacker
//! in the untrusted foundry starts with the GDSII file". This crate
//! implements the actual Calma GDSII binary stream format — record framing,
//! excess-64 reals, `BOUNDARY`/`PATH`/`SREF` elements — so hardened layouts
//! can be exported to (and attack tooling can consume) the same artifact a
//! real foundry receives.
//!
//! # Examples
//!
//! ```
//! use gdsii::{GdsElement, GdsLibrary, GdsStruct};
//!
//! let mut lib = GdsLibrary::new("DEMO");
//! let mut top = GdsStruct::new("TOP");
//! top.elements.push(GdsElement::Boundary {
//!     layer: 1,
//!     xy: vec![(0, 0), (100, 0), (100, 50), (0, 50), (0, 0)],
//! });
//! lib.structs.push(top);
//! let bytes = lib.to_bytes();
//! let back = GdsLibrary::from_bytes(&bytes).unwrap();
//! assert_eq!(back.structs[0].name, "TOP");
//! ```

mod export;
mod model;
mod reader;
mod records;
mod writer;

pub use export::layout_to_gds;
pub use model::{GdsElement, GdsLibrary, GdsStruct};
pub use reader::ReadGdsError;
pub use records::{read_real8, write_real8};
