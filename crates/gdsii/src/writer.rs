use crate::model::{GdsElement, GdsLibrary, GdsStruct};
use crate::records::{
    push_ascii_record, push_i16_record, push_i32_record, push_record, write_real8, DataType,
    RecordType,
};

/// Fixed timestamp written into `BGNLIB`/`BGNSTR` (year, month, day, hour,
/// minute, second, twice). Deterministic output makes byte-level round-trip
/// tests meaningful.
const TIMESTAMP: [i16; 12] = [2023, 7, 10, 0, 0, 0, 2023, 7, 10, 0, 0, 0];

impl GdsLibrary {
    /// Serializes the library to GDSII stream bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024 + self.num_elements() * 48);
        push_i16_record(&mut out, RecordType::Header, &[600]);
        push_i16_record(&mut out, RecordType::BgnLib, &TIMESTAMP);
        push_ascii_record(&mut out, RecordType::LibName, &self.name);
        let mut units = Vec::with_capacity(16);
        units.extend_from_slice(&write_real8(self.user_units_per_dbu));
        units.extend_from_slice(&write_real8(self.meters_per_dbu));
        push_record(&mut out, RecordType::Units, DataType::Real8, &units);
        for s in &self.structs {
            write_struct(&mut out, s);
        }
        push_record(&mut out, RecordType::EndLib, DataType::NoData, &[]);
        out
    }
}

fn write_struct(out: &mut Vec<u8>, s: &GdsStruct) {
    push_i16_record(out, RecordType::BgnStr, &TIMESTAMP);
    push_ascii_record(out, RecordType::StrName, &s.name);
    for e in &s.elements {
        write_element(out, e);
    }
    push_record(out, RecordType::EndStr, DataType::NoData, &[]);
}

fn xy_payload(xy: &[(i32, i32)]) -> Vec<i32> {
    let mut v = Vec::with_capacity(xy.len() * 2);
    for &(x, y) in xy {
        v.push(x);
        v.push(y);
    }
    v
}

fn write_element(out: &mut Vec<u8>, e: &GdsElement) {
    match e {
        GdsElement::Boundary { layer, xy } => {
            push_record(out, RecordType::Boundary, DataType::NoData, &[]);
            push_i16_record(out, RecordType::Layer, &[*layer]);
            push_i16_record(out, RecordType::DataType, &[0]);
            push_i32_record(out, RecordType::Xy, &xy_payload(xy));
        }
        GdsElement::Path { layer, width, xy } => {
            push_record(out, RecordType::Path, DataType::NoData, &[]);
            push_i16_record(out, RecordType::Layer, &[*layer]);
            push_i16_record(out, RecordType::DataType, &[0]);
            push_i32_record(out, RecordType::Width, &[*width]);
            push_i32_record(out, RecordType::Xy, &xy_payload(xy));
        }
        GdsElement::Sref { name, at } => {
            push_record(out, RecordType::Sref, DataType::NoData, &[]);
            push_ascii_record(out, RecordType::SName, name);
            push_i32_record(out, RecordType::Xy, &[at.0, at.1]);
        }
    }
    push_record(out, RecordType::EndEl, DataType::NoData, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_starts_with_header_and_ends_with_endlib() {
        let lib = GdsLibrary::new("T");
        let b = lib.to_bytes();
        assert_eq!(&b[0..4], &[0, 6, 0x00, 0x02]);
        assert_eq!(&b[b.len() - 4..], &[0, 4, 0x04, 0x00]);
    }

    #[test]
    fn output_is_deterministic() {
        let mut lib = GdsLibrary::new("T");
        let mut s = GdsStruct::new("TOP");
        s.elements.push(GdsElement::Sref {
            name: "INV_X1".into(),
            at: (190, 1400),
        });
        lib.structs.push(s);
        assert_eq!(lib.to_bytes(), lib.to_bytes());
    }
}
