use layout::Layout;
use route::RoutingState;
use tech::{LayerDir, Technology, SITE_H, SITE_W};

use crate::model::{GdsElement, GdsLibrary, GdsStruct};

/// GDSII layer used for cell outlines (a common convention for the
/// "prBoundary" placement abstract).
const OUTLINE_LAYER: i16 = 235;

/// Exports a placed (and optionally routed) layout to a GDSII library.
///
/// Every referenced cell master becomes one structure holding its footprint
/// outline; the top structure holds one `SREF` per placed cell and filler,
/// plus a `PATH` per committed global-routing segment (center-line at gcell
/// resolution, width from the layer's default width times the active NDR
/// scale).
///
/// ```
/// # use netlist::bench; use tech::Technology; use layout::Layout;
/// let tech = Technology::nangate45_like();
/// let design = bench::generate(&bench::tiny_spec(), &tech);
/// let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
/// place::global_place(&mut layout, &tech, 1);
/// let lib = gdsii::layout_to_gds(&layout, &tech, None);
/// assert!(lib.find_struct("TOP").is_some());
/// ```
pub fn layout_to_gds(
    layout: &Layout,
    tech: &Technology,
    routing: Option<&RoutingState>,
) -> GdsLibrary {
    let design = layout.design();
    let mut lib = GdsLibrary::new(&design.name);

    // One structure per referenced master.
    let mut used_kinds: Vec<tech::KindId> = design.cells.iter().map(|c| c.kind).collect();
    used_kinds.extend(layout.occupancy().fillers().iter().map(|f| f.kind));
    used_kinds.sort_unstable();
    used_kinds.dedup();
    for kind in &used_kinds {
        let master = tech.library.kind(*kind);
        let w = master.width_sites as i32 * SITE_W as i32;
        let h = SITE_H as i32;
        let mut s = GdsStruct::new(master.name);
        s.elements.push(GdsElement::Boundary {
            layer: OUTLINE_LAYER,
            xy: vec![(0, 0), (w, 0), (w, h), (0, h), (0, 0)],
        });
        lib.structs.push(s);
    }

    let mut top = GdsStruct::new("TOP");
    let fp = layout.floorplan();
    for (id, cell) in design.cells_iter() {
        if let Some(pos) = layout.cell_pos(id) {
            let r = fp.sites_rect(pos, tech.library.kind(cell.kind).width_sites);
            top.elements.push(GdsElement::Sref {
                name: tech.library.kind(cell.kind).name.to_owned(),
                at: (r.lo.x as i32, r.lo.y as i32),
            });
        }
    }
    for f in layout.occupancy().fillers() {
        let r = fp.sites_rect(f.pos, f.width);
        top.elements.push(GdsElement::Sref {
            name: tech.library.kind(f.kind).name.to_owned(),
            at: (r.lo.x as i32, r.lo.y as i32),
        });
    }

    if let Some(routing) = routing {
        let grid = routing.grid();
        for (nid, _) in design.nets_iter() {
            for seg in routing.net_segs(nid) {
                let layer = tech.layer(seg.layer);
                let scale = grid.scale(seg.layer);
                let width = (layer.width as f64 * scale).round() as i32;
                let cx = |x: u32| (x as i64 * grid.span_x() + grid.span_x() / 2) as i32;
                let cy = |y: u32| (y as i64 * grid.span_y() + grid.span_y() / 2) as i32;
                let xy = match layer.dir {
                    LayerDir::Horizontal => {
                        vec![
                            (cx(seg.from.x), cy(seg.from.y)),
                            (cx(seg.to.x), cy(seg.to.y)),
                        ]
                    }
                    LayerDir::Vertical => {
                        vec![
                            (cx(seg.from.x), cy(seg.from.y)),
                            (cx(seg.to.x), cy(seg.to.y)),
                        ]
                    }
                };
                top.elements.push(GdsElement::Path {
                    layer: seg.layer as i16,
                    width,
                    xy,
                });
            }
        }
    }

    lib.structs.push(top);
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::bench;

    fn exported(with_routes: bool) -> GdsLibrary {
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let mut layout = Layout::empty_floorplan(design, &tech, 0.6);
        place::global_place(&mut layout, &tech, 2);
        layout::insert_fillers(layout.occupancy_mut(), &tech);
        if with_routes {
            let routing = route::route_design(&layout, &tech);
            layout_to_gds(&layout, &tech, Some(&routing))
        } else {
            layout_to_gds(&layout, &tech, None)
        }
    }

    #[test]
    fn every_cell_is_referenced() {
        let lib = exported(false);
        let tech = Technology::nangate45_like();
        let design = bench::generate(&bench::tiny_spec(), &tech);
        let top = lib.find_struct("TOP").unwrap();
        let srefs = top
            .elements
            .iter()
            .filter(|e| matches!(e, GdsElement::Sref { .. }))
            .count();
        assert!(srefs >= design.cells.len(), "fillers add extra refs");
    }

    #[test]
    fn routed_export_round_trips_through_bytes() {
        let lib = exported(true);
        let bytes = lib.to_bytes();
        let back = GdsLibrary::from_bytes(&bytes).unwrap();
        assert_eq!(back, lib);
        let top = back.find_struct("TOP").unwrap();
        assert!(top
            .elements
            .iter()
            .any(|e| matches!(e, GdsElement::Path { .. })));
    }

    #[test]
    fn masters_have_outline_geometry() {
        let lib = exported(false);
        let inv = lib.find_struct("DFF_X1").expect("flops exist");
        assert!(matches!(
            inv.elements[0],
            GdsElement::Boundary {
                layer: OUTLINE_LAYER,
                ..
            }
        ));
    }
}
