use crate::model::{GdsElement, GdsLibrary, GdsStruct};
use crate::records::read_real8;

/// Errors from [`GdsLibrary::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadGdsError {
    /// The stream ended inside a record.
    Truncated,
    /// A record had an impossible length field.
    BadRecordLength {
        /// Byte offset of the offending record.
        offset: usize,
    },
    /// A record appeared in an invalid position.
    UnexpectedRecord {
        /// Record type byte.
        record_type: u8,
        /// Byte offset.
        offset: usize,
    },
    /// The stream did not terminate with `ENDLIB`.
    MissingEndLib,
}

impl core::fmt::Display for ReadGdsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "stream truncated inside a record"),
            Self::BadRecordLength { offset } => {
                write!(f, "invalid record length at byte {offset}")
            }
            Self::UnexpectedRecord {
                record_type,
                offset,
            } => {
                write!(f, "unexpected record 0x{record_type:02x} at byte {offset}")
            }
            Self::MissingEndLib => write!(f, "stream ended without ENDLIB"),
        }
    }
}

impl std::error::Error for ReadGdsError {}

struct Record<'a> {
    rt: u8,
    payload: &'a [u8],
    offset: usize,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<Option<Record<'a>>, ReadGdsError> {
        if self.pos + 4 > self.data.len() {
            if self.pos == self.data.len() {
                return Ok(None);
            }
            return Err(ReadGdsError::Truncated);
        }
        let offset = self.pos;
        let len = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]) as usize;
        if len < 4 {
            return Err(ReadGdsError::BadRecordLength { offset });
        }
        if self.pos + len > self.data.len() {
            return Err(ReadGdsError::Truncated);
        }
        let rt = self.data[self.pos + 2];
        let payload = &self.data[self.pos + 4..self.pos + len];
        self.pos += len;
        Ok(Some(Record {
            rt,
            payload,
            offset,
        }))
    }
}

fn ascii(payload: &[u8]) -> String {
    let end = payload
        .iter()
        .position(|&b| b == 0)
        .unwrap_or(payload.len());
    String::from_utf8_lossy(&payload[..end]).into_owned()
}

fn i16_at(payload: &[u8]) -> i16 {
    i16::from_be_bytes([payload[0], payload[1]])
}

fn i32s(payload: &[u8]) -> Vec<i32> {
    payload
        .chunks_exact(4)
        .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn xy_pairs(payload: &[u8]) -> Vec<(i32, i32)> {
    i32s(payload)
        .chunks_exact(2)
        .map(|p| (p[0], p[1]))
        .collect()
}

impl GdsLibrary {
    /// Parses a GDSII stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadGdsError`] on malformed framing, truncation, or
    /// records in invalid positions. Unknown record types inside elements
    /// are skipped (forward compatibility), mirroring common readers.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ReadGdsError> {
        let mut cur = Cursor { data, pos: 0 };
        let mut lib = GdsLibrary::new("");
        let mut current: Option<GdsStruct> = None;
        // Element assembly state.
        let mut pending_kind: Option<u8> = None;
        let mut layer: i16 = 0;
        let mut width: i32 = 0;
        let mut sname = String::new();
        let mut xy: Vec<(i32, i32)> = Vec::new();
        let mut saw_endlib = false;

        while let Some(rec) = cur.next()? {
            match rec.rt {
                0x00 /* HEADER */ | 0x01 /* BGNLIB */ | 0x05 /* BGNSTR */ => {}
                0x02 /* LIBNAME */ => lib.name = ascii(rec.payload),
                0x03
                    if rec.payload.len() >= 16 => {
                        lib.user_units_per_dbu = read_real8(&rec.payload[0..8]);
                        lib.meters_per_dbu = read_real8(&rec.payload[8..16]);
                    }
                0x06 /* STRNAME */ => {
                    if current.is_none() {
                        current = Some(GdsStruct::new(""));
                    }
                    if let Some(s) = current.as_mut() {
                        s.name = ascii(rec.payload);
                    }
                }
                0x07 /* ENDSTR */ => {
                    let s = current.take().ok_or(ReadGdsError::UnexpectedRecord {
                        record_type: rec.rt,
                        offset: rec.offset,
                    })?;
                    lib.structs.push(s);
                }
                0x08..=0x0A /* SREF */ => {
                    if current.is_none() {
                        return Err(ReadGdsError::UnexpectedRecord {
                            record_type: rec.rt,
                            offset: rec.offset,
                        });
                    }
                    pending_kind = Some(rec.rt);
                    layer = 0;
                    width = 0;
                    sname.clear();
                    xy.clear();
                }
                0x0D /* LAYER */ => layer = i16_at(rec.payload),
                0x0E /* DATATYPE */ => {}
                0x0F /* WIDTH */ => width = i32s(rec.payload).first().copied().unwrap_or(0),
                0x10 /* XY */ => xy = xy_pairs(rec.payload),
                0x12 /* SNAME */ => sname = ascii(rec.payload),
                0x11 /* ENDEL */ => {
                    let kind = pending_kind.take().ok_or(ReadGdsError::UnexpectedRecord {
                        record_type: rec.rt,
                        offset: rec.offset,
                    })?;
                    let element = match kind {
                        0x08 => GdsElement::Boundary {
                            layer,
                            xy: std::mem::take(&mut xy),
                        },
                        0x09 => GdsElement::Path {
                            layer,
                            width,
                            xy: std::mem::take(&mut xy),
                        },
                        0x0A => GdsElement::Sref {
                            name: std::mem::take(&mut sname),
                            at: xy.first().copied().unwrap_or((0, 0)),
                        },
                        _ => unreachable!("pending_kind is one of the three elements"),
                    };
                    current
                        .as_mut()
                        .expect("inside a structure")
                        .elements
                        .push(element);
                }
                0x04 /* ENDLIB */ => {
                    saw_endlib = true;
                    break;
                }
                _ => {} // skip unknown records
            }
        }
        if !saw_endlib {
            return Err(ReadGdsError::MissingEndLib);
        }
        Ok(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GdsLibrary {
        let mut lib = GdsLibrary::new("LIB");
        let mut kind = GdsStruct::new("NAND2_X1");
        kind.elements.push(GdsElement::Boundary {
            layer: 1,
            xy: vec![(0, 0), (570, 0), (570, 1400), (0, 1400), (0, 0)],
        });
        let mut top = GdsStruct::new("TOP");
        top.elements.push(GdsElement::Sref {
            name: "NAND2_X1".into(),
            at: (1900, 2800),
        });
        top.elements.push(GdsElement::Path {
            layer: 3,
            width: 70,
            xy: vec![(0, 0), (5000, 0), (5000, 3000)],
        });
        lib.structs.push(kind);
        lib.structs.push(top);
        lib
    }

    #[test]
    fn round_trip_preserves_everything() {
        let lib = sample();
        let back = GdsLibrary::from_bytes(&lib.to_bytes()).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        let cut = &bytes[..bytes.len() - 6];
        assert!(matches!(
            GdsLibrary::from_bytes(cut),
            Err(ReadGdsError::Truncated | ReadGdsError::MissingEndLib)
        ));
    }

    #[test]
    fn garbage_rejected() {
        let garbage = vec![0u8, 1, 2, 3, 4, 5];
        assert!(GdsLibrary::from_bytes(&garbage).is_err());
    }

    #[test]
    fn element_outside_struct_rejected() {
        // Hand-craft: HEADER then BOUNDARY with no BGNSTR/STRNAME.
        let mut bytes = Vec::new();
        crate::records::push_i16_record(&mut bytes, crate::records::RecordType::Header, &[600]);
        crate::records::push_record(
            &mut bytes,
            crate::records::RecordType::Boundary,
            crate::records::DataType::NoData,
            &[],
        );
        assert!(matches!(
            GdsLibrary::from_bytes(&bytes),
            Err(ReadGdsError::UnexpectedRecord { .. })
        ));
    }
}
