/// An element inside a GDSII structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdsElement {
    /// A filled polygon on a layer; `xy` is a closed vertex list (first
    /// point repeated last, per the GDSII convention).
    Boundary {
        /// GDSII layer number.
        layer: i16,
        /// Closed vertex list in DBU.
        xy: Vec<(i32, i32)>,
    },
    /// A wire of the given width along a center-line.
    Path {
        /// GDSII layer number.
        layer: i16,
        /// Wire width in DBU.
        width: i32,
        /// Center-line vertices in DBU.
        xy: Vec<(i32, i32)>,
    },
    /// A reference to another structure placed at `at`.
    Sref {
        /// Referenced structure name.
        name: String,
        /// Placement origin in DBU.
        at: (i32, i32),
    },
}

/// A named GDSII structure (a reusable cell).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GdsStruct {
    /// Structure name.
    pub name: String,
    /// Contained elements.
    pub elements: Vec<GdsElement>,
}

impl GdsStruct {
    /// Creates an empty structure.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            elements: Vec::new(),
        }
    }
}

/// A GDSII library: units plus a list of structures. The last structure is
/// conventionally the top cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GdsLibrary {
    /// Library name.
    pub name: String,
    /// User units per database unit (1e-3 → DBU is a nanometre when the
    /// user unit is a micron).
    pub user_units_per_dbu: f64,
    /// Metres per database unit (1e-9 for nanometre DBU).
    pub meters_per_dbu: f64,
    /// Structures in definition order.
    pub structs: Vec<GdsStruct>,
}

impl GdsLibrary {
    /// Creates an empty library with nanometre database units.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            user_units_per_dbu: 1e-3,
            meters_per_dbu: 1e-9,
            structs: Vec::new(),
        }
    }

    /// Finds a structure by name.
    pub fn find_struct(&self, name: &str) -> Option<&GdsStruct> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Total element count across all structures.
    pub fn num_elements(&self) -> usize {
        self.structs.iter().map(|s| s.elements.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_lookup() {
        let mut lib = GdsLibrary::new("L");
        lib.structs.push(GdsStruct::new("A"));
        lib.structs.push(GdsStruct::new("B"));
        assert!(lib.find_struct("A").is_some());
        assert!(lib.find_struct("C").is_none());
        assert_eq!(lib.num_elements(), 0);
    }

    #[test]
    fn default_units_are_nanometres() {
        let lib = GdsLibrary::new("L");
        assert_eq!(lib.meters_per_dbu, 1e-9);
        assert_eq!(lib.user_units_per_dbu, 1e-3);
    }
}
