//! GDSII record framing primitives and the excess-64 floating-point format.

/// GDSII record types used by this implementation (record type byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum RecordType {
    Header = 0x00,
    BgnLib = 0x01,
    LibName = 0x02,
    Units = 0x03,
    EndLib = 0x04,
    BgnStr = 0x05,
    StrName = 0x06,
    EndStr = 0x07,
    Boundary = 0x08,
    Path = 0x09,
    Sref = 0x0A,
    Layer = 0x0D,
    DataType = 0x0E,
    Width = 0x0F,
    Xy = 0x10,
    EndEl = 0x11,
    SName = 0x12,
}

/// GDSII data type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum DataType {
    NoData = 0x00,
    Int16 = 0x02,
    Int32 = 0x03,
    Real8 = 0x05,
    Ascii = 0x06,
}

/// Encodes an `f64` as a GDSII 8-byte excess-64 real.
///
/// Layout: sign bit, 7-bit base-16 exponent biased by 64, 56-bit mantissa
/// in `[1/16, 1)`.
///
/// ```
/// let b = gdsii::write_real8(1e-9);
/// assert!((gdsii::read_real8(&b) - 1e-9).abs() < 1e-24);
/// ```
pub fn write_real8(v: f64) -> [u8; 8] {
    if v == 0.0 {
        return [0; 8];
    }
    let sign = if v < 0.0 { 0x80u8 } else { 0 };
    let mut m = v.abs();
    let mut e: i32 = 64;
    while m >= 1.0 {
        m /= 16.0;
        e += 1;
    }
    while m < 1.0 / 16.0 {
        m *= 16.0;
        e -= 1;
    }
    debug_assert!((0..=127).contains(&e), "exponent out of range");
    let mantissa = (m * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (e as u8);
    for i in 0..7 {
        out[7 - i] = ((mantissa >> (8 * i)) & 0xFF) as u8;
    }
    out
}

/// Decodes a GDSII 8-byte excess-64 real.
///
/// # Panics
///
/// Panics if fewer than eight bytes are supplied.
pub fn read_real8(b: &[u8]) -> f64 {
    assert!(b.len() >= 8, "real8 needs eight bytes");
    let sign = if b[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let e = (b[0] & 0x7F) as i32 - 64;
    let mut mantissa = 0u64;
    for &byte in &b[1..8] {
        mantissa = (mantissa << 8) | byte as u64;
    }
    sign * (mantissa as f64 / 2f64.powi(56)) * 16f64.powi(e)
}

/// Appends one framed record: 2-byte big-endian length (including the
/// 4-byte header), record type, data type, payload.
pub(crate) fn push_record(out: &mut Vec<u8>, rt: RecordType, dt: DataType, payload: &[u8]) {
    let len = payload.len() + 4;
    assert!(len <= u16::MAX as usize, "record too long");
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.push(rt as u8);
    out.push(dt as u8);
    out.extend_from_slice(payload);
}

pub(crate) fn push_i16_record(out: &mut Vec<u8>, rt: RecordType, values: &[i16]) {
    let mut p = Vec::with_capacity(values.len() * 2);
    for v in values {
        p.extend_from_slice(&v.to_be_bytes());
    }
    push_record(out, rt, DataType::Int16, &p);
}

pub(crate) fn push_i32_record(out: &mut Vec<u8>, rt: RecordType, values: &[i32]) {
    let mut p = Vec::with_capacity(values.len() * 4);
    for v in values {
        p.extend_from_slice(&v.to_be_bytes());
    }
    push_record(out, rt, DataType::Int32, &p);
}

pub(crate) fn push_ascii_record(out: &mut Vec<u8>, rt: RecordType, s: &str) {
    let mut p: Vec<u8> = s.bytes().collect();
    if p.len() % 2 == 1 {
        p.push(0); // pad to even length per spec
    }
    push_record(out, rt, DataType::Ascii, &p);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real8_round_trip() {
        for v in [0.0, 1.0, -1.0, 1e-9, 1e-3, 0.001, 123456.789, -2.5e-7] {
            let enc = write_real8(v);
            let dec = read_real8(&enc);
            let err = if v == 0.0 {
                dec.abs()
            } else {
                ((dec - v) / v).abs()
            };
            assert!(err < 1e-12, "{v} -> {dec}");
        }
    }

    #[test]
    fn real8_known_encoding_of_one() {
        // 1.0 = 0.0625 * 16^1 → exponent 65, mantissa 2^52.
        let b = write_real8(1.0);
        assert_eq!(b[0], 0x41);
        assert_eq!(b[1], 0x10);
    }

    #[test]
    fn record_framing() {
        let mut out = Vec::new();
        push_i16_record(&mut out, RecordType::Header, &[600]);
        assert_eq!(out.len(), 6);
        assert_eq!(&out[0..2], &[0, 6]);
        assert_eq!(out[2], 0x00);
        assert_eq!(out[3], 0x02);
        assert_eq!(&out[4..6], &600i16.to_be_bytes());
    }

    #[test]
    fn ascii_padded_to_even() {
        let mut out = Vec::new();
        push_ascii_record(&mut out, RecordType::LibName, "ABC");
        assert_eq!(out.len(), 8);
        assert_eq!(&out[4..8], b"ABC\0");
    }
}
