//! Synthetic benchmark suite mirroring the twelve designs of the paper's
//! evaluation (crypto cores and openMSP430 microprocessors).
//!
//! Each [`DesignSpec`] controls the three properties that drive every effect
//! the paper measures: design size / free-space structure (`target_cells`,
//! `utilization`), timing tightness (`period_factor`, `levels`), and the
//! location and count of security-critical assets (`key_ffs`). Generation is
//! fully deterministic per spec seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tech::Technology;

use crate::builder::NetlistBuilder;
use crate::design::{CellId, Constraints, Design, NetId};

/// Base per-logic-level delay (gate + local wire) in ps; the wire share
/// grows with die size, so [`DesignSpec::clock_period`] adds a
/// `sqrt(cells)` term on top.
pub const LEVEL_DELAY_BASE: f64 = 37.0;

/// Wire-delay growth per sqrt(cell-count), ps per logic level.
pub const LEVEL_DELAY_PER_SQRT_CELL: f64 = 0.24;

/// Estimated sequential overhead (clock-to-Q + setup + clock margins), ps.
pub const SEQ_OVERHEAD_EST: f64 = 90.0;

/// Generation parameters for one benchmark design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Design name as it appears in the paper's tables.
    pub name: &'static str,
    /// RNG seed (deterministic generation).
    pub seed: u64,
    /// Total cell-instance target (flops + gates).
    pub target_cells: usize,
    /// Core placement utilization used when floorplanning the design.
    pub utilization: f64,
    /// Number of key-register flip-flops (security-critical).
    pub key_ffs: usize,
    /// Number of state/datapath flip-flops.
    pub state_ffs: usize,
    /// Combinational depth between register stages.
    pub levels: usize,
    /// Clock-period multiplier over the estimated critical path: below 1.0
    /// the design is timing-tight (negative baseline TNS), above 1.0 it
    /// closes timing with margin.
    pub period_factor: f64,
}

impl DesignSpec {
    /// Clock period implied by the spec, in ps: the estimated critical
    /// path (`levels` stages whose per-stage delay grows with die size)
    /// scaled by `period_factor`.
    pub fn clock_period(&self) -> f64 {
        let level_delay =
            LEVEL_DELAY_BASE + LEVEL_DELAY_PER_SQRT_CELL * (self.target_cells as f64).sqrt();
        (self.levels as f64 * level_delay + SEQ_OVERHEAD_EST) * self.period_factor
    }
}

/// The twelve benchmark specs in the order of the paper's Table II.
pub fn all_specs() -> Vec<DesignSpec> {
    #[allow(clippy::type_complexity)] // one-off literal table
    let table: [(&'static str, u64, usize, f64, usize, usize, usize, f64); 12] = [
        ("AES_1", 0xAE51, 12_000, 0.68, 128, 256, 26, 0.996),
        ("AES_2", 0xAE52, 16_000, 0.70, 128, 256, 28, 1.045),
        ("AES_3", 0xAE53, 13_000, 0.68, 128, 256, 26, 0.950),
        ("Camellia", 0xCA3E, 2_800, 0.62, 64, 128, 18, 1.250),
        ("CAST", 0xCA57, 3_600, 0.74, 64, 128, 20, 0.958),
        ("MISTY", 0x3157, 3_200, 0.64, 64, 128, 18, 1.200),
        ("openMSP430_1", 0x4301, 1_800, 0.55, 32, 96, 14, 1.500),
        ("openMSP430_2", 0x4302, 2_200, 0.58, 32, 96, 16, 0.975),
        ("PRESENT", 0x9245, 1_200, 0.60, 40, 80, 12, 1.400),
        ("SEED", 0x5EED, 3_600, 0.73, 64, 128, 20, 0.960),
        ("SPARX", 0x59A6, 2_400, 0.63, 48, 96, 16, 1.300),
        ("TDEA", 0x7DEA, 2_000, 0.61, 56, 112, 14, 1.350),
    ];
    table
        .iter()
        .map(
            |&(
                name,
                seed,
                target_cells,
                utilization,
                key_ffs,
                state_ffs,
                levels,
                period_factor,
            )| {
                DesignSpec {
                    name,
                    seed,
                    target_cells,
                    utilization,
                    key_ffs,
                    state_ffs,
                    levels,
                    period_factor,
                }
            },
        )
        .collect()
}

/// Looks up a spec by its paper name.
///
/// ```
/// assert!(netlist::bench::spec_by_name("AES_2").is_some());
/// assert!(netlist::bench::spec_by_name("DES").is_none());
/// ```
pub fn spec_by_name(name: &str) -> Option<DesignSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// The stock design names in suite order, for fail-fast CLI validation
/// messages.
pub fn known_names() -> Vec<&'static str> {
    all_specs().iter().map(|s| s.name).collect()
}

/// Scales a spec to `factor`× its stock size: the cell target and the
/// state/datapath register bank grow linearly (a wider datapath), while
/// the key bank and pipeline depth stay fixed — key width and round
/// structure are algorithm properties, not size properties. The clock
/// period re-derives automatically (wire delay grows with
/// `sqrt(cells)`), the seed is mixed with the factor so scaled variants
/// generate decorrelated netlists, and the name gains an `@x{factor}`
/// suffix that round-trips through [`parse_spec`].
///
/// The suffixed name is interned with a deliberate bounded leak
/// (`Box::leak`): specs carry `&'static str` names, and a process
/// resolves at most a handful of distinct scale factors.
pub fn scale_spec(spec: &DesignSpec, factor: u32) -> DesignSpec {
    assert!(factor >= 1, "scale factor must be positive");
    if factor == 1 {
        return spec.clone();
    }
    let name: &'static str = Box::leak(format!("{}@x{}", spec.name, factor).into_boxed_str());
    DesignSpec {
        name,
        seed: spec.seed ^ (0x5CA1E000 + u64::from(factor)),
        target_cells: spec.target_cells * factor as usize,
        utilization: spec.utilization,
        key_ffs: spec.key_ffs,
        state_ffs: spec.state_ffs * factor as usize,
        levels: spec.levels,
        period_factor: spec.period_factor,
    }
}

/// Resolves `"NAME"` or `"NAME@xN"` (the scaled-suite naming
/// convention) to a spec: the bare name is a stock [`all_specs`] entry,
/// the suffixed form is that entry through [`scale_spec`].
///
/// ```
/// assert!(netlist::bench::parse_spec("Camellia").is_some());
/// let big = netlist::bench::parse_spec("Camellia@x8").unwrap();
/// assert_eq!(big.target_cells, 8 * 2_800);
/// assert!(netlist::bench::parse_spec("Camellia@x0").is_none());
/// assert!(netlist::bench::parse_spec("DES@x2").is_none());
/// ```
pub fn parse_spec(name: &str) -> Option<DesignSpec> {
    if let Some((base, suffix)) = name.split_once("@x") {
        let factor: u32 = suffix.parse().ok().filter(|&f| (1..=1024).contains(&f))?;
        return spec_by_name(base).map(|s| scale_spec(&s, factor));
    }
    spec_by_name(name)
}

/// A deliberately small spec for unit tests across the workspace.
pub fn tiny_spec() -> DesignSpec {
    DesignSpec {
        name: "TINY",
        seed: 0x7111,
        target_cells: 220,
        utilization: 0.60,
        key_ffs: 8,
        state_ffs: 16,
        levels: 6,
        period_factor: 1.2,
    }
}

/// Weighted gate mix of a crypto-flavoured round function.
const GATE_MIX: &[(&str, u32)] = &[
    ("INV_X1", 10),
    ("BUF_X1", 4),
    ("NAND2_X1", 18),
    ("NAND2_X2", 4),
    ("NOR2_X1", 12),
    ("NAND3_X1", 6),
    ("XOR2_X1", 16),
    ("XNOR2_X1", 6),
    ("AND2_X1", 6),
    ("OR2_X1", 6),
    ("AOI21_X1", 5),
    ("OAI21_X1", 4),
    ("MUX2_X1", 3),
];

fn sample_gate(rng: &mut StdRng) -> &'static str {
    let total: u32 = GATE_MIX.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen_range(0..total);
    for &(name, w) in GATE_MIX {
        if t < w {
            return name;
        }
        t -= w;
    }
    unreachable!()
}

/// Generates the design described by `spec`.
///
/// The structure is a register bank (key + state + a small control FSM)
/// feeding `spec.levels` layers of combinational logic that loop back into
/// the register D-pins — the canonical shape of an iterated crypto core.
/// Key flip-flops and the first layer of gates they feed (key-control
/// logic) are marked security-critical, matching Definition 2.1.
///
/// # Panics
///
/// Panics if the spec is degenerate (no room for combinational logic).
pub fn generate(spec: &DesignSpec, tech: &Technology) -> Design {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = NetlistBuilder::new(spec.name, tech);
    b.set_constraints(Constraints {
        clock_period: spec.clock_period(),
        input_delay: 0.0,
        output_delay: 0.0,
    });
    b.add_clock("clk");

    let ctl_ffs = 16.min(spec.state_ffs / 4).max(4);
    let n_ffs = spec.key_ffs + spec.state_ffs + ctl_ffs;
    assert!(
        spec.target_cells > n_ffs + spec.levels,
        "spec has no room for combinational logic"
    );
    let n_pis = (spec.target_cells / 100).clamp(8, 64);
    let n_pos = (spec.target_cells / 200).clamp(8, 32);

    let pis: Vec<NetId> = (0..n_pis)
        .map(|i| b.add_primary_input(&format!("pi{i}")))
        .collect();

    // Register banks. D-inputs are temporarily tied to PIs and rewired once
    // the combinational cloud exists.
    let mut key_ffs: Vec<(CellId, NetId)> = Vec::with_capacity(spec.key_ffs);
    for i in 0..spec.key_ffs {
        let seed_net = pis[i % pis.len()];
        let (ff, q) = b.add_dff("DFF_X1", seed_net);
        b.mark_critical(ff);
        key_ffs.push((ff, q));
    }
    let mut state_ffs: Vec<(CellId, NetId)> = Vec::with_capacity(spec.state_ffs);
    for i in 0..spec.state_ffs {
        let seed_net = pis[(i + 7) % pis.len()];
        state_ffs.push(b.add_dff("DFF_X1", seed_net));
    }
    let mut all_ffs = key_ffs.clone();
    for i in 0..ctl_ffs {
        let seed_net = pis[(i + 3) % pis.len()];
        let (ff, q) = b.add_dff("DFF_X1", seed_net);
        // Half of the control FSM guards key loading: key-control logic.
        if i < ctl_ffs / 2 {
            b.mark_critical(ff);
        }
        all_ffs.push((ff, q));
    }
    all_ffs.extend(state_ffs.iter().copied());

    let n_comb = spec.target_cells - n_ffs;
    let per_level = n_comb / spec.levels;

    // Level 0 signal pool: register outputs plus primary inputs. Key
    // registers are excluded — their only fanout is the key-control logic
    // of the first level, giving key nets exactly one stage less depth
    // than the datapath (small positive slack on tight designs, the
    // texture the exploitable-distance analysis keys on).
    let mut prev_level: Vec<NetId> = all_ffs.iter().skip(spec.key_ffs).map(|&(_, q)| q).collect();
    prev_level.extend(pis.iter().copied());
    let mut older_pool: Vec<NetId> = Vec::new();
    let mut built = 0usize;
    // Asset outputs that must be observed by the key-control cone: all key
    // bits plus the critical half of the control FSM.
    let asset_qs: Vec<NetId> = key_ffs
        .iter()
        .map(|&(_, q)| q)
        .chain(
            all_ffs[spec.key_ffs..]
                .iter()
                .take(ctl_ffs / 2)
                .map(|&(_, q)| q),
        )
        .collect();
    let mut next_key_tap = 0usize;
    // Outputs of the previous level's key-cone gates: re-tapped by the next
    // level so the key-observation cone runs the full pipeline depth and
    // every key path stays timing-constrained (exactly one stage shallower
    // than the datapath).
    let mut key_cone: Vec<NetId> = Vec::new();
    // Outputs of the shallow third of the cone: the key-schedule nets the
    // key registers reload from. Keeping key paths shallow mirrors real
    // crypto cores (key schedule is short; the state datapath is deep) and
    // leaves positive slack on key paths even in timing-tight designs.
    let mut key_reload_pool: Vec<NetId> = Vec::new();

    for level in 0..spec.levels {
        let count = if level + 1 == spec.levels {
            n_comb - built
        } else {
            per_level
        };
        let mut this_level: Vec<NetId> = Vec::with_capacity(count);
        let mut next_cone: Vec<NetId> = Vec::new();
        for g in 0..count {
            let kind = sample_gate(&mut rng);
            let arity = tech
                .library
                .kind(
                    tech.library
                        .kind_by_name(kind)
                        .expect("gate mix kind exists"),
                )
                .inputs as usize;
            let mut ins = Vec::with_capacity(arity);
            // Bit-sliced structure: fanin comes from a window of the
            // previous level around the gate's own slice position, giving
            // the physical locality a placed real design exhibits. A small
            // fraction reaches across the design (round reconvergence,
            // control fanout), producing realistic long nets.
            let center = g * prev_level.len() / count.max(1);
            let window = 6usize.min(prev_level.len().saturating_sub(1));
            for _ in 0..arity {
                let net = if rng.gen_bool(0.97) || older_pool.is_empty() {
                    let lo = center.saturating_sub(window);
                    let hi = (center + window + 1).min(prev_level.len());
                    prev_level[rng.gen_range(lo..hi)]
                } else {
                    older_pool[rng.gen_range(0..older_pool.len())]
                };
                ins.push(net);
            }
            // In the first level, the earliest gates tap the asset
            // registers (the key-control cells of Definition 2.1), two
            // bits per gate where the arity allows, until every asset bit
            // is observed — no key register may dangle. Deeper levels
            // re-tap the previous level's key-cone outputs so the
            // observation cone stays constrained all the way down.
            let mut is_key_control = false;
            if level == 0 {
                if next_key_tap < asset_qs.len() {
                    is_key_control = true;
                    ins[0] = asset_qs[next_key_tap];
                    next_key_tap += 1;
                    if arity >= 2 && next_key_tap < asset_qs.len() {
                        ins[1] = asset_qs[next_key_tap];
                        next_key_tap += 1;
                    }
                }
            } else if g < key_cone.len() {
                ins[0] = key_cone[g];
            }
            let out = b.add_gate(kind, &ins);
            if is_key_control {
                b.mark_critical(CellId(b.num_cells() as u32 - 1));
                next_cone.push(out);
            } else if level > 0 && g < key_cone.len() {
                next_cone.push(out);
            }
            this_level.push(out);
        }
        built += count;
        key_cone = next_cone;
        older_pool.extend(prev_level.iter().copied());
        if level == spec.levels / 3 {
            key_reload_pool = this_level.clone();
        }
        prev_level = this_level;
    }
    if key_reload_pool.is_empty() {
        key_reload_pool = prev_level.clone();
    }

    // Close the register loops: key registers reload from a *narrow* slice
    // of the shallow key-schedule nets (a real key bank hangs off a small
    // key-schedule cone, which is what makes it cluster physically), the
    // control FSM from a narrow decoder slice, and the state registers
    // from across the whole last combinational level.
    let n_key = key_ffs.len();
    let key_slice = key_reload_pool.len().min((n_key / 2).max(1));
    let ctl_slice = prev_level.len().min(16);
    for (i, &(ff, _)) in all_ffs.iter().enumerate() {
        let d = if i < n_key {
            key_reload_pool[i % key_slice]
        } else if i < n_key + ctl_ffs {
            prev_level[i % ctl_slice]
        } else {
            prev_level[i % prev_level.len()]
        };
        b.rewire_dff_d(ff, d);
    }
    // Observe a slice of the last level at primary outputs.
    for i in 0..n_pos {
        let idx = (i * prev_level.len().max(1) / n_pos.max(1)) % prev_level.len();
        b.add_primary_output(prev_level[idx]);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_specs_present_and_unique() {
        let specs = all_specs();
        assert_eq!(specs.len(), 12);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn tight_specs_have_shorter_periods_than_loose_at_same_depth() {
        let cast = spec_by_name("CAST").unwrap();
        let seed = spec_by_name("SEED").unwrap();
        assert_eq!(cast.levels, seed.levels);
        let camellia = spec_by_name("Camellia").unwrap();
        assert!(
            cast.clock_period()
                < camellia.clock_period() * cast.levels as f64 / camellia.levels as f64 * 1.1
        );
        assert!(cast.period_factor < 1.0);
        assert!(camellia.period_factor > 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let tech = Technology::nangate45_like();
        let spec = tiny_spec();
        let a = generate(&spec, &tech);
        let b = generate(&spec, &tech);
        assert_eq!(a.cells.len(), b.cells.len());
        assert_eq!(a.nets.len(), b.nets.len());
        assert_eq!(a.critical_cells, b.critical_cells);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.kind, cb.kind);
            assert_eq!(ca.inputs, cb.inputs);
        }
    }

    #[test]
    fn generated_design_validates_and_hits_target() {
        let tech = Technology::nangate45_like();
        let spec = tiny_spec();
        let d = generate(&spec, &tech);
        d.validate(&tech).expect("valid design");
        assert_eq!(d.cells.len(), spec.target_cells);
        assert!(d.critical_cells.len() >= spec.key_ffs);
        // ctl_ffs for the tiny spec: min(16, 16/4).max(4) = 4.
        assert_eq!(d.num_flops(&tech), spec.key_ffs + spec.state_ffs + 4);
    }

    #[test]
    fn full_suite_generates_and_validates() {
        let tech = Technology::nangate45_like();
        for spec in all_specs() {
            let d = generate(&spec, &tech);
            d.validate(&tech)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name));
            assert_eq!(d.cells.len(), spec.target_cells, "{}", spec.name);
        }
    }

    #[test]
    fn scaled_spec_generates_validates_and_parses_back() {
        let tech = Technology::nangate45_like();
        let base = spec_by_name("TDEA").unwrap();
        let big = scale_spec(&base, 3);
        assert_eq!(big.name, "TDEA@x3");
        assert_eq!(big.target_cells, 3 * base.target_cells);
        assert_eq!(big.key_ffs, base.key_ffs, "key width is algorithmic");
        assert_eq!(big.state_ffs, 3 * base.state_ffs);
        assert_eq!(big.levels, base.levels);
        assert_ne!(big.seed, base.seed);
        assert!(big.clock_period() > base.clock_period());
        let parsed = parse_spec("TDEA@x3").unwrap();
        assert_eq!(parsed.target_cells, big.target_cells);
        assert_eq!(parsed.seed, big.seed);
        let d = generate(&big, &tech);
        d.validate(&tech).expect("scaled design valid");
        assert_eq!(d.cells.len(), big.target_cells);
    }

    #[test]
    fn scale_by_one_is_identity_and_known_names_match_suite() {
        let base = spec_by_name("AES_1").unwrap();
        let same = scale_spec(&base, 1);
        assert_eq!(same.name, "AES_1");
        assert_eq!(same.seed, base.seed);
        let names = known_names();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"openMSP430_2"));
    }

    #[test]
    fn critical_cells_are_keys_and_key_control() {
        let tech = Technology::nangate45_like();
        let d = generate(&tiny_spec(), &tech);
        let n_seq_critical = d
            .critical_cells
            .iter()
            .filter(|&&c| tech.library.kind(d.cell(c).kind).is_sequential())
            .count();
        let n_comb_critical = d.critical_cells.len() - n_seq_critical;
        assert!(n_seq_critical >= tiny_spec().key_ffs);
        assert!(n_comb_critical > 0, "key-control logic must be marked");
    }
}
