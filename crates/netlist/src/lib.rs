//! Gate-level netlist model and synthetic benchmark generator.
//!
//! The paper evaluates on the ISPD'22 security-closure benchmark suite
//! (crypto cores and microprocessors), each design annotated with a list of
//! *security-critical cell assets* (key registers and key-control logic) and
//! SDC timing constraints. Those artifacts are not redistributable, so this
//! crate generates structurally equivalent designs: register banks feeding
//! XOR-rich combinational cones (crypto rounds), with the key registers and
//! the logic they directly feed marked as security-critical, plus a clock
//! constraint per design (see `DESIGN.md` §1 for the substitution argument).
//!
//! # Examples
//!
//! ```
//! use netlist::{bench, Design};
//! use tech::Technology;
//!
//! let tech = Technology::nangate45_like();
//! let design = bench::generate(&bench::spec_by_name("PRESENT").unwrap(), &tech);
//! assert!(design.validate(&tech).is_ok());
//! assert!(!design.critical_cells.is_empty());
//! ```

pub mod bench;
mod builder;
mod design;

pub use builder::NetlistBuilder;
pub use design::{
    Cell, CellId, Constraints, Design, Net, NetDriver, NetId, Sink, ValidateDesignError,
};
