use std::collections::HashSet;

use tech::{KindId, Technology};

/// Identifier of a [`Cell`] instance within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Identifier of a [`Net`] within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// The source driving a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// Driven by the output pin of a cell.
    Cell(CellId),
    /// Driven by the `i`-th primary input of the design.
    PrimaryInput(u32),
}

/// A load on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// The `pin`-th signal input of a cell.
    CellInput {
        /// Loaded cell.
        cell: CellId,
        /// Input pin index, `0 .. kind.inputs`.
        pin: u8,
    },
    /// The clock pin of a sequential cell.
    CellClock(CellId),
    /// The `i`-th primary output of the design.
    PrimaryOutput(u32),
}

/// A standard-cell instance.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Instance name, unique within the design.
    pub name: String,
    /// Library master.
    pub kind: KindId,
    /// Signal input nets, one per library input pin.
    pub inputs: Vec<NetId>,
    /// Output net (all library cells in this workspace have one output;
    /// fillers have none).
    pub output: Option<NetId>,
    /// Clock net for sequential cells.
    pub clock: Option<NetId>,
}

/// A signal net with a single driver and a fanout list.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name, unique within the design.
    pub name: String,
    /// Driving source.
    pub driver: NetDriver,
    /// Loads.
    pub sinks: Vec<Sink>,
}

/// SDC-style timing constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    /// Clock period in ps.
    pub clock_period: f64,
    /// Arrival time budget consumed outside the core at primary inputs, ps.
    pub input_delay: f64,
    /// Required-time margin at primary outputs, ps.
    pub output_delay: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            clock_period: 1_000.0,
            input_delay: 0.0,
            output_delay: 0.0,
        }
    }
}

/// Errors returned by [`Design::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateDesignError {
    /// A cell's input count does not match its library master.
    InputArity {
        /// Offending cell.
        cell: CellId,
    },
    /// A net's recorded driver does not point back at the net.
    DanglingDriver {
        /// Offending net.
        net: NetId,
    },
    /// A sink entry references a pin that does not exist or does not point
    /// back at the net.
    BadSink {
        /// Offending net.
        net: NetId,
    },
    /// A sequential cell is missing its clock connection.
    MissingClock {
        /// Offending cell.
        cell: CellId,
    },
    /// A critical-asset entry references a nonexistent cell.
    BadCriticalCell {
        /// Offending id.
        cell: CellId,
    },
}

impl core::fmt::Display for ValidateDesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InputArity { cell } => write!(f, "cell {} has wrong input arity", cell.0),
            Self::DanglingDriver { net } => write!(f, "net {} driver does not match", net.0),
            Self::BadSink { net } => write!(f, "net {} has an inconsistent sink", net.0),
            Self::MissingClock { cell } => write!(f, "sequential cell {} has no clock", cell.0),
            Self::BadCriticalCell { cell } => {
                write!(f, "critical asset list references unknown cell {}", cell.0)
            }
        }
    }
}

impl std::error::Error for ValidateDesignError {}

/// A gate-level design: cells, nets, IO, constraints, and the annotated
/// security-critical cell assets (Definition 2.1 of the paper).
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name (e.g. `"AES_1"`).
    pub name: String,
    /// Cell instances, indexed by [`CellId`].
    pub cells: Vec<Cell>,
    /// Nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// Nets driven by primary inputs (parallel to input index).
    pub primary_inputs: Vec<NetId>,
    /// Nets sampled by primary outputs (parallel to output index).
    pub primary_outputs: Vec<NetId>,
    /// The clock net, if the design is sequential.
    pub clock: Option<NetId>,
    /// Timing constraints.
    pub constraints: Constraints,
    /// Security-critical cell assets to be protected.
    pub critical_cells: Vec<CellId>,
}

impl Design {
    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells_iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets_iter(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Number of sequential cells.
    pub fn num_flops(&self, tech: &Technology) -> usize {
        self.cells
            .iter()
            .filter(|c| tech.library.kind(c.kind).is_sequential())
            .count()
    }

    /// Sum of cell footprints in placement sites.
    pub fn total_cell_sites(&self, tech: &Technology) -> u64 {
        self.cells
            .iter()
            .map(|c| tech.library.kind(c.kind).width_sites as u64)
            .sum()
    }

    /// Whether `cell` is in the security-critical asset list.
    pub fn is_critical(&self, cell: CellId) -> bool {
        self.critical_cells.contains(&cell)
    }

    /// Critical cells as a hash set for O(1) membership tests.
    pub fn critical_set(&self) -> HashSet<CellId> {
        self.critical_cells.iter().copied().collect()
    }

    /// Checks the structural invariants of the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: input arity mismatches,
    /// driver/sink back-references that do not match, sequential cells
    /// without clock, or critical-asset entries referencing unknown cells.
    pub fn validate(&self, tech: &Technology) -> Result<(), ValidateDesignError> {
        for (id, cell) in self.cells_iter() {
            let kind = tech.library.kind(cell.kind);
            if cell.inputs.len() != kind.inputs as usize {
                return Err(ValidateDesignError::InputArity { cell: id });
            }
            if kind.is_sequential() && cell.clock.is_none() {
                return Err(ValidateDesignError::MissingClock { cell: id });
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let ok = self.net(net).sinks.iter().any(|s| {
                    matches!(s, Sink::CellInput { cell, pin: p } if *cell == id && *p as usize == pin)
                });
                if !ok {
                    return Err(ValidateDesignError::BadSink { net });
                }
            }
            if let Some(out) = cell.output {
                if self.net(out).driver != NetDriver::Cell(id) {
                    return Err(ValidateDesignError::DanglingDriver { net: out });
                }
            }
        }
        for (nid, net) in self.nets_iter() {
            match net.driver {
                NetDriver::Cell(c) => {
                    if self.cells.get(c.0 as usize).and_then(|c| c.output) != Some(nid) {
                        return Err(ValidateDesignError::DanglingDriver { net: nid });
                    }
                }
                NetDriver::PrimaryInput(i) => {
                    if self.primary_inputs.get(i as usize) != Some(&nid) {
                        return Err(ValidateDesignError::DanglingDriver { net: nid });
                    }
                }
            }
            for s in &net.sinks {
                let ok = match *s {
                    Sink::CellInput { cell, pin } => self
                        .cells
                        .get(cell.0 as usize)
                        .is_some_and(|c| c.inputs.get(pin as usize) == Some(&nid)),
                    Sink::CellClock(cell) => self
                        .cells
                        .get(cell.0 as usize)
                        .is_some_and(|c| c.clock == Some(nid)),
                    Sink::PrimaryOutput(i) => self.primary_outputs.get(i as usize) == Some(&nid),
                };
                if !ok {
                    return Err(ValidateDesignError::BadSink { net: nid });
                }
            }
        }
        for &c in &self.critical_cells {
            if c.0 as usize >= self.cells.len() {
                return Err(ValidateDesignError::BadCriticalCell { cell: c });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use tech::Technology;

    #[test]
    fn validate_accepts_builder_output() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("t", &tech);
        let a = b.add_primary_input("a");
        let inv = b.add_gate("INV_X1", &[a]);
        b.add_primary_output(inv);
        let d = b.finish();
        assert!(d.validate(&tech).is_ok());
    }

    #[test]
    fn validate_catches_bad_critical_list() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("t", &tech);
        let a = b.add_primary_input("a");
        let inv = b.add_gate("INV_X1", &[a]);
        b.add_primary_output(inv);
        let mut d = b.finish();
        d.critical_cells.push(CellId(999));
        assert_eq!(
            d.validate(&tech),
            Err(ValidateDesignError::BadCriticalCell { cell: CellId(999) })
        );
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("t", &tech);
        let a = b.add_primary_input("a");
        let n = b.add_gate("NAND2_X1", &[a, a]);
        b.add_primary_output(n);
        let mut d = b.finish();
        d.cells[0].inputs.pop();
        assert!(matches!(
            d.validate(&tech),
            Err(ValidateDesignError::InputArity { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ValidateDesignError::MissingClock { cell: CellId(3) };
        assert!(!e.to_string().is_empty());
    }
}
