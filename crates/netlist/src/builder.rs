use tech::Technology;

use crate::design::{Cell, CellId, Constraints, Design, Net, NetDriver, NetId, Sink};

/// Incremental netlist constructor maintaining driver/sink consistency.
///
/// ```
/// use netlist::NetlistBuilder;
/// use tech::Technology;
///
/// let tech = Technology::nangate45_like();
/// let mut b = NetlistBuilder::new("adder_bit", &tech);
/// let a = b.add_primary_input("a");
/// let bb = b.add_primary_input("b");
/// let sum = b.add_gate("XOR2_X1", &[a, bb]);
/// b.add_primary_output(sum);
/// let design = b.finish();
/// assert!(design.validate(&tech).is_ok());
/// ```
#[derive(Debug)]
pub struct NetlistBuilder<'t> {
    tech: &'t Technology,
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    clock: Option<NetId>,
    constraints: Constraints,
    critical: Vec<CellId>,
}

impl<'t> NetlistBuilder<'t> {
    /// Starts a new design with default constraints.
    pub fn new(name: &str, tech: &'t Technology) -> Self {
        Self {
            tech,
            name: name.to_owned(),
            cells: Vec::new(),
            nets: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            clock: None,
            constraints: Constraints::default(),
            critical: Vec::new(),
        }
    }

    /// Sets the SDC-style constraints.
    pub fn set_constraints(&mut self, c: Constraints) -> &mut Self {
        self.constraints = c;
        self
    }

    fn new_net(&mut self, name: String, driver: NetDriver) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name,
            driver,
            sinks: Vec::new(),
        });
        id
    }

    /// Adds a primary input and returns the net it drives.
    pub fn add_primary_input(&mut self, name: &str) -> NetId {
        let idx = self.primary_inputs.len() as u32;
        let net = self.new_net(name.to_owned(), NetDriver::PrimaryInput(idx));
        self.primary_inputs.push(net);
        net
    }

    /// Declares the global clock as a primary input and returns its net.
    /// Subsequent [`add_dff`](Self::add_dff) calls connect to it.
    ///
    /// # Panics
    ///
    /// Panics if a clock was already declared.
    pub fn add_clock(&mut self, name: &str) -> NetId {
        assert!(self.clock.is_none(), "clock already declared");
        let net = self.add_primary_input(name);
        self.clock = Some(net);
        net
    }

    /// Marks `net` as observed by a primary output.
    pub fn add_primary_output(&mut self, net: NetId) {
        let idx = self.primary_outputs.len() as u32;
        self.nets[net.0 as usize]
            .sinks
            .push(Sink::PrimaryOutput(idx));
        self.primary_outputs.push(net);
    }

    /// Instantiates a combinational gate of library kind `kind_name` driven
    /// by `inputs`, returning its output net.
    ///
    /// # Panics
    ///
    /// Panics if the kind is unknown, sequential, or the input count does
    /// not match the master.
    pub fn add_gate(&mut self, kind_name: &str, inputs: &[NetId]) -> NetId {
        let kind = self
            .tech
            .library
            .kind_by_name(kind_name)
            .unwrap_or_else(|| panic!("unknown cell kind {kind_name}"));
        let master = self.tech.library.kind(kind);
        assert!(!master.is_sequential(), "use add_dff for sequential cells");
        assert_eq!(
            master.inputs as usize,
            inputs.len(),
            "wrong input count for {kind_name}"
        );
        let id = CellId(self.cells.len() as u32);
        let out = self.new_net(format!("n{}", self.nets.len()), NetDriver::Cell(id));
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.0 as usize].sinks.push(Sink::CellInput {
                cell: id,
                pin: pin as u8,
            });
        }
        self.cells.push(Cell {
            name: format!("u{}", id.0),
            kind,
            inputs: inputs.to_vec(),
            output: Some(out),
            clock: None,
        });
        out
    }

    /// Instantiates a flip-flop of kind `kind_name` with data input `d`,
    /// returning `(cell, q_net)`.
    ///
    /// # Panics
    ///
    /// Panics if no clock was declared or the kind is not sequential.
    pub fn add_dff(&mut self, kind_name: &str, d: NetId) -> (CellId, NetId) {
        let clock = self.clock.expect("declare a clock before adding flops");
        let kind = self
            .tech
            .library
            .kind_by_name(kind_name)
            .unwrap_or_else(|| panic!("unknown cell kind {kind_name}"));
        assert!(
            self.tech.library.kind(kind).is_sequential(),
            "{kind_name} is not sequential"
        );
        let id = CellId(self.cells.len() as u32);
        let q = self.new_net(format!("n{}", self.nets.len()), NetDriver::Cell(id));
        self.nets[d.0 as usize]
            .sinks
            .push(Sink::CellInput { cell: id, pin: 0 });
        self.nets[clock.0 as usize].sinks.push(Sink::CellClock(id));
        self.cells.push(Cell {
            name: format!("ff{}", id.0),
            kind,
            inputs: vec![d],
            output: Some(q),
            clock: Some(clock),
        });
        (id, q)
    }

    /// Replaces the data input of an existing flip-flop (used to close
    /// register feedback loops after the combinational cloud is built).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a flip-flop created by this builder.
    pub fn rewire_dff_d(&mut self, cell: CellId, new_d: NetId) {
        let old_d = {
            let c = &self.cells[cell.0 as usize];
            assert!(c.clock.is_some(), "rewire_dff_d on a non-flop");
            c.inputs[0]
        };
        self.nets[old_d.0 as usize]
            .sinks
            .retain(|s| !matches!(s, Sink::CellInput { cell: c, pin: 0 } if *c == cell));
        self.nets[new_d.0 as usize]
            .sinks
            .push(Sink::CellInput { cell, pin: 0 });
        self.cells[cell.0 as usize].inputs[0] = new_d;
    }

    /// Adds `cell` to the security-critical asset list.
    pub fn mark_critical(&mut self, cell: CellId) {
        if !self.critical.contains(&cell) {
            self.critical.push(cell);
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Finalizes the design.
    pub fn finish(self) -> Design {
        Design {
            name: self.name,
            cells: self.cells,
            nets: self.nets,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            clock: self.clock,
            constraints: self.constraints,
            critical_cells: self.critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tech::Technology;

    #[test]
    fn dff_loop_with_rewire() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("loop", &tech);
        let clk = b.add_clock("clk");
        let seed = b.add_primary_input("seed");
        let (ff, q) = b.add_dff("DFF_X1", seed);
        let nq = b.add_gate("INV_X1", &[q]);
        b.rewire_dff_d(ff, nq);
        b.add_primary_output(q);
        let d = b.finish();
        assert!(d.validate(&tech).is_ok());
        assert_eq!(d.clock, Some(clk));
        // The seed net lost its sink after the rewire.
        assert!(d.net(seed).sinks.is_empty());
    }

    #[test]
    fn critical_marking_is_idempotent() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("c", &tech);
        b.add_clock("clk");
        let x = b.add_primary_input("x");
        let (ff, q) = b.add_dff("DFF_X1", x);
        b.add_primary_output(q);
        b.mark_critical(ff);
        b.mark_critical(ff);
        let d = b.finish();
        assert_eq!(d.critical_cells, vec![ff]);
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn gate_arity_checked() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("bad", &tech);
        let a = b.add_primary_input("a");
        b.add_gate("NAND2_X1", &[a]);
    }

    #[test]
    #[should_panic(expected = "declare a clock")]
    fn dff_requires_clock() {
        let tech = Technology::nangate45_like();
        let mut b = NetlistBuilder::new("bad", &tech);
        let a = b.add_primary_input("a");
        b.add_dff("DFF_X1", a);
    }
}
