use crate::Dbu;

/// A point in DBU coordinates.
///
/// ```
/// let p = geom::Point::new(100, 200);
/// assert_eq!(p.manhattan(geom::Point::new(150, 180)), 70);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// X coordinate in DBU.
    pub x: Dbu,
    /// Y coordinate in DBU.
    pub y: Dbu,
}

impl Point {
    /// Creates a point from DBU coordinates.
    pub fn new(x: Dbu, y: Dbu) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other` in DBU.
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev distance to `other` in DBU.
    pub fn chebyshev(self, other: Point) -> Dbu {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl core::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl core::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Dbu, Dbu)> for Point {
    fn from((x, y): (Dbu, Dbu)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, 4);
        let b = Point::new(1, 10);
        assert_eq!(a + b, Point::new(4, 14));
        assert_eq!(a - b, Point::new(2, -6));
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(-3, 4);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(a.chebyshev(b), 4);
    }

    #[test]
    fn min_max() {
        let a = Point::new(3, 9);
        let b = Point::new(5, 2);
        assert_eq!(a.min(b), Point::new(3, 2));
        assert_eq!(a.max(b), Point::new(5, 9));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }
}
