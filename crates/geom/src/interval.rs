/// A half-open integer interval `[lo, hi)`, used for runs of free placement
/// sites within a core row.
///
/// ```
/// let a = geom::Interval::new(3, 9);
/// assert_eq!(a.len(), 6);
/// assert!(a.overlaps(&geom::Interval::new(8, 12)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
}

impl Interval {
    /// Creates an interval; `lo` and `hi` are swapped if given out of order.
    pub fn new(lo: u32, hi: u32) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// Number of integer points covered.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the interval covers no points.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: u32) -> bool {
        x >= self.lo && x < self.hi
    }

    /// Whether the two intervals share at least one point (empty intervals
    /// overlap nothing).
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi && other.lo < self.hi
    }

    /// Whether the two intervals overlap or touch end-to-end.
    pub fn touches(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Overlapping sub-interval, or `None` when disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Interval::new(self.lo.max(other.lo), self.hi.min(other.hi)))
    }
}

impl core::fmt::Display for Interval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_props() {
        let i = Interval::new(2, 7);
        assert_eq!(i.len(), 5);
        assert!(i.contains(2));
        assert!(!i.contains(7));
        assert!(!i.is_empty());
        assert!(Interval::new(3, 3).is_empty());
    }

    #[test]
    fn swaps_out_of_order_bounds() {
        assert_eq!(Interval::new(9, 4), Interval::new(4, 9));
    }

    #[test]
    fn overlap_vs_touch() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 9);
        assert!(!a.overlaps(&b));
        assert!(a.touches(&b));
        assert!(a.overlaps(&Interval::new(4, 6)));
        assert_eq!(
            a.intersection(&Interval::new(4, 6)),
            Some(Interval::new(4, 5))
        );
        assert_eq!(a.intersection(&b), None);
    }
}
