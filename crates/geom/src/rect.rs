use crate::{Dbu, Point};

/// An axis-aligned rectangle in DBU coordinates, with inclusive lower-left
/// corner `lo` and exclusive upper-right corner `hi` (half-open on both
/// axes, like a slice range).
///
/// ```
/// use geom::{Point, Rect};
/// let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
/// assert!(r.contains(Point::new(0, 0)));
/// assert!(!r.contains(Point::new(10, 10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners; the corners are normalized so
    /// the result always satisfies `lo <= hi` per axis.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from a lower-left corner plus width and height.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    pub fn from_wh(lo: Point, w: Dbu, h: Dbu) -> Self {
        assert!(w >= 0 && h >= 0, "rect dimensions must be non-negative");
        Self {
            lo,
            hi: Point::new(lo.x + w, lo.y + h),
        }
    }

    /// Width in DBU.
    pub fn width(&self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height in DBU.
    pub fn height(&self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Area in DBU².
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Whether the rectangle encloses zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Center point (rounded down).
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// Whether `p` lies inside the half-open rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Whether `other` lies fully inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lo.x >= self.lo.x
            && other.lo.y >= self.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// Whether the two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// Intersection rectangle, or `None` when the overlap is empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Rectangle expanded by `margin` DBU on every side (clamped to remain
    /// well-formed when `margin` is negative).
    pub fn inflate(&self, margin: Dbu) -> Rect {
        let lo = Point::new(self.lo.x - margin, self.lo.y - margin);
        let hi = Point::new(
            (self.hi.x + margin).max(lo.x),
            (self.hi.y + margin).max(lo.y),
        );
        Rect { lo, hi }
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Dbu, y0: Dbu, x1: Dbu, y1: Dbu) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn normalizes_corners() {
        let a = Rect::new(Point::new(5, 5), Point::new(0, 0));
        assert_eq!(a, r(0, 0, 5, 5));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 20, 20);
        assert_eq!(a.intersection(&b), Some(r(5, 5, 10, 10)));
        assert_eq!(a.union(&b), r(0, 0, 20, 20));
        let c = r(100, 100, 110, 110);
        assert_eq!(a.intersection(&c), None);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = r(0, 0, 10, 10);
        let b = r(10, 0, 20, 10);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn area_and_empty() {
        assert_eq!(r(0, 0, 4, 5).area(), 20);
        assert!(r(3, 3, 3, 9).is_empty());
        assert!(!r(0, 0, 1, 1).is_empty());
    }

    #[test]
    fn inflate_deflate() {
        let a = r(10, 10, 20, 20);
        assert_eq!(a.inflate(5), r(5, 5, 25, 25));
        assert_eq!(a.inflate(-2), r(12, 12, 18, 18));
        // Deflating past the center clamps instead of inverting.
        let tiny = a.inflate(-50);
        assert!(tiny.width() >= 0 && tiny.height() >= 0);
    }

    #[test]
    fn contains_rect_edges() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains_rect(&r(0, 0, 10, 10)));
        assert!(!a.contains_rect(&r(0, 0, 11, 10)));
    }
}
