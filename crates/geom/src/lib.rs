//! Geometry primitives shared by every crate in the GDSII-Guard reproduction.
//!
//! All physical coordinates are expressed in *database units* ([`Dbu`], one
//! nanometre in this workspace). Layout-level code additionally uses discrete
//! *site* coordinates ([`SitePos`]) addressing placement sites inside core
//! rows, and *grid cell* coordinates ([`GcellPos`]) addressing the global
//! routing grid.
//!
//! # Examples
//!
//! ```
//! use geom::{Point, Rect};
//!
//! let die = Rect::new(Point::new(0, 0), Point::new(10_000, 8_000));
//! let cell = Rect::from_wh(Point::new(1_000, 1_400), 380, 1_400);
//! assert!(die.contains_rect(&cell));
//! assert_eq!(cell.area(), 380 * 1_400);
//! ```

mod interval;
mod point;
mod rect;

pub use interval::Interval;
pub use point::Point;
pub use rect::Rect;

/// Database unit: 1 DBU = 1 nm throughout the workspace.
pub type Dbu = i64;

/// Number of database units per micron (1 DBU = 1 nm).
pub const DBU_PER_UM: Dbu = 1_000;

/// Converts a DBU length to microns.
///
/// ```
/// assert_eq!(geom::dbu_to_um(1_900), 1.9);
/// ```
pub fn dbu_to_um(d: Dbu) -> f64 {
    d as f64 / DBU_PER_UM as f64
}

/// Converts a micron length to DBU, rounding to the nearest unit.
///
/// ```
/// assert_eq!(geom::um_to_dbu(1.9), 1_900);
/// ```
pub fn um_to_dbu(um: f64) -> Dbu {
    (um * DBU_PER_UM as f64).round() as Dbu
}

/// Discrete placement-site coordinate: `row` indexes core rows bottom-up,
/// `col` indexes sites left-to-right within the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SitePos {
    /// Core-row index, counted from the bottom of the core area.
    pub row: u32,
    /// Site column within the row, counted from the left core edge.
    pub col: u32,
}

impl SitePos {
    /// Creates a site position.
    ///
    /// ```
    /// let p = geom::SitePos::new(3, 17);
    /// assert_eq!((p.row, p.col), (3, 17));
    /// ```
    pub fn new(row: u32, col: u32) -> Self {
        Self { row, col }
    }

    /// Chebyshev (max of per-axis) distance to another site, in sites.
    ///
    /// The exploitable-distance test of Knechtel et al. bounds Trojan routing
    /// *both horizontally and vertically*, which is exactly the Chebyshev
    /// ball; see `secmetrics`.
    ///
    /// ```
    /// use geom::SitePos;
    /// assert_eq!(SitePos::new(0, 0).chebyshev(SitePos::new(2, 5)), 5);
    /// ```
    pub fn chebyshev(self, other: SitePos) -> u32 {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// Manhattan distance to another site, in sites.
    ///
    /// ```
    /// use geom::SitePos;
    /// assert_eq!(SitePos::new(0, 0).manhattan(SitePos::new(2, 5)), 7);
    /// ```
    pub fn manhattan(self, other: SitePos) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// Global-routing grid-cell coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GcellPos {
    /// Gcell column (x direction).
    pub x: u32,
    /// Gcell row (y direction).
    pub y: u32,
}

impl GcellPos {
    /// Creates a gcell position.
    ///
    /// ```
    /// let g = geom::GcellPos::new(4, 9);
    /// assert_eq!((g.x, g.y), (4, 9));
    /// ```
    pub fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance in gcells.
    ///
    /// ```
    /// use geom::GcellPos;
    /// assert_eq!(GcellPos::new(1, 1).manhattan(GcellPos::new(4, 3)), 5);
    /// ```
    pub fn manhattan(self, other: GcellPos) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbu_um_round_trip() {
        for um in [0.0, 0.19, 1.4, 123.456] {
            let d = um_to_dbu(um);
            assert!((dbu_to_um(d) - um).abs() < 1e-3);
        }
    }

    #[test]
    fn site_pos_distances() {
        let a = SitePos::new(10, 10);
        let b = SitePos::new(7, 14);
        assert_eq!(a.chebyshev(b), 4);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(a.chebyshev(a), 0);
    }

    #[test]
    fn gcell_manhattan_symmetric() {
        let a = GcellPos::new(2, 8);
        let b = GcellPos::new(5, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }
}
