//! Layout visualization (the paper's Fig. 1 / Fig. 3 view): renders the
//! placed core as ASCII art with security-critical cells, exploitable
//! regions, and ordinary cells distinguished — before and after the Cell
//! Shift operator erases the regions.
//!
//! ```text
//! cargo run --release --example visualize_layout
//! ```

use gdsii_guard::cell_shift::cell_shift;
use gdsii_guard::prelude::*;
use geom::SitePos;
use layout::SiteState;
use secmetrics::THRESH_ER;
use tech::Technology;

/// One character per `step × step` site block: `#` critical cell,
/// `▒` (rendered `%`) exploitable region, `.` other cells, space = free.
fn render(snap: &gdsii_guard::Snapshot, tech: &Technology) -> String {
    let layout = &snap.layout;
    let fp = layout.floorplan();
    let critical = layout.design().critical_set();
    let step_c = (fp.cols() / 96).max(1);
    let step_r = (fp.rows() / 40).max(1);
    // Mark exploitable-region membership per site block.
    let mut region_rows: std::collections::HashSet<(u32, u32)> = Default::default();
    for region in &snap.security.regions {
        for &(row, iv) in &region.rows {
            for col in (iv.lo..iv.hi).step_by(step_c as usize) {
                region_rows.insert((row / step_r, col / step_c));
            }
        }
    }
    let mut out = String::new();
    for br in (0..fp.rows() / step_r).rev() {
        for bc in 0..fp.cols() / step_c {
            let mut ch = ' ';
            'block: for r in br * step_r..((br + 1) * step_r).min(fp.rows()) {
                for c in bc * step_c..((bc + 1) * step_c).min(fp.cols()) {
                    match layout.occupancy().state(SitePos::new(r, c)) {
                        SiteState::Cell(id) if critical.contains(&id) => {
                            ch = '#';
                            break 'block;
                        }
                        SiteState::Cell(_) => {
                            if ch == ' ' || ch == '%' {
                                ch = '.';
                            }
                        }
                        SiteState::Empty | SiteState::Filler => {}
                    }
                }
            }
            if ch != '#' && region_rows.contains(&(br, bc)) {
                ch = '%';
            }
            out.push(ch);
        }
        out.push('\n');
    }
    let _ = tech;
    out
}

fn main() {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("PRESENT").expect("known benchmark");
    let base = implement_baseline(&spec, &tech).unwrap();
    println!(
        "=== {} baseline — {} exploitable sites ('#' critical bank, '%' exploitable, '.' cells) ===",
        spec.name, base.security.er_sites
    );
    print!("{}", render(&base, &tech));

    let mut layout = layout::Layout::clone(&base.layout);
    gdsii_guard::preprocess::lock_critical_cells(&mut layout);
    cell_shift(&mut layout, &tech, THRESH_ER);
    let after = evaluate(layout, &tech).unwrap();
    println!(
        "\n=== after Cell Shift — {} exploitable sites remain ===",
        after.security.er_sites
    );
    print!("{}", render(&after, &tech));
}
