//! Attack simulation: attempt the A2-style Trojan battery against the
//! baseline layout and against a GDSII-Guard-hardened layout of the same
//! design — the validation loop behind the exploitable-region metrics.
//!
//! ```text
//! cargo run --release --example attack_simulation
//! ```

use gdsii_guard::prelude::*;
use secmetrics::{simulate_attack, TrojanSpec};
use tech::Technology;

fn report(label: &str, analysis: &secmetrics::RegionAnalysis, tech: &Technology) {
    println!(
        "\n{label}: {} exploitable sites in {} regions (largest {})",
        analysis.er_sites,
        analysis.regions.len(),
        analysis.regions.first().map_or(0, |r| r.sites)
    );
    for spec in TrojanSpec::battery() {
        let outcome = simulate_attack(analysis, tech, &spec);
        println!(
            "  {:<22} needs {:>3} sites + {:>4.0} tracks → {}",
            spec.name,
            spec.total_sites(tech),
            spec.min_free_tracks,
            if outcome.success {
                format!(
                    "INSERTED into region #{} ({} gates placed)",
                    outcome.region_index.expect("success has a region"),
                    outcome.gates_placed
                )
            } else {
                format!(
                    "DEFEATED ({} of {} gates fit)",
                    outcome.gates_placed,
                    spec.gates.len()
                )
            }
        );
    }
}

fn main() {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("MISTY").expect("known benchmark");
    println!(
        "implementing {} and attacking it before and after hardening…",
        spec.name
    );
    let base = implement_baseline(&spec, &tech).unwrap();
    report("baseline layout", &base.security, &tech);

    let hardened = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .snapshot();
    report("GDSII-Guard hardened layout", &hardened.security, &tech);

    println!(
        "\ntiming cost of the defense: TNS {:.1} → {:.1} ps, power {:.3} → {:.3} mW",
        base.tns_ps(),
        hardened.tns_ps(),
        base.power_mw(),
        hardened.power_mw()
    );
}
