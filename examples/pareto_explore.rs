//! Multi-objective exploration: run the NSGA-II flow optimizer on one
//! design and print the explored timing–security Pareto front (the per-
//! design view behind the paper's Fig. 5).
//!
//! ```text
//! cargo run --release --example pareto_explore [design]
//! ```

use gdsii_guard::prelude::*;
use gdsii_guard::OpSelect;
use tech::Technology;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "TDEA".to_owned());
    let spec = netlist::bench::spec_by_name(&name)
        .unwrap_or_else(|| panic!("unknown design {name}; see netlist::bench::all_specs"));
    let tech = Technology::nangate45_like();
    println!("implementing baseline {}…", spec.name);
    let base = implement_baseline(&spec, &tech).unwrap();
    let params = Nsga2Params {
        population: 10,
        generations: 3,
        ..Nsga2Params::default()
    };
    println!(
        "exploring the Table-I parameter space (population {}, {} generations)…",
        params.population, params.generations
    );
    let result = explore(&base, &tech, &params);
    println!(
        "evaluated {} unique configurations; baseline TNS {:.1} ps, power {:.3} mW",
        result.points.len(),
        result.base_tns_ps,
        result.base_power_mw
    );
    println!("\nPareto front (feasible, non-dominated):");
    println!(
        "{:>9} {:>10} {:>9} {:>5} | operator, widened layers",
        "security", "TNS(ps)", "power", "DRC"
    );
    let mut front = result.pareto_front();
    front.sort_by(|a, b| {
        a.metrics
            .security
            .partial_cmp(&b.metrics.security)
            .expect("finite")
    });
    for p in front {
        let op = match p.config.op {
            OpSelect::CellShift => "CS".to_owned(),
            OpSelect::Lda { n, n_iter } => format!("LDA(N={n},it={n_iter})"),
        };
        let widened: Vec<String> = p
            .config
            .scales
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 1.0)
            .map(|(i, s)| format!("M{}x{s}", i + 1))
            .collect();
        println!(
            "{:>9.3} {:>10.1} {:>9.3} {:>5} | {}, [{}]",
            p.metrics.security,
            p.metrics.tns_ps,
            p.metrics.power_mw,
            p.metrics.drc,
            op,
            widened.join(" ")
        );
    }
}
