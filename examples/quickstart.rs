//! Quickstart: implement a baseline layout, harden it with one
//! GDSII-Guard flow configuration, and compare the security and design
//! metrics before and after.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gdsii_guard::prelude::*;
use tech::Technology;

fn main() {
    let tech = Technology::nangate45_like();
    // PRESENT: the smallest crypto core in the benchmark suite.
    let spec = netlist::bench::spec_by_name("PRESENT").expect("known benchmark");
    println!(
        "implementing {} ({} cells, clock {:.0} ps)…",
        spec.name,
        spec.target_cells,
        spec.clock_period()
    );
    let base = implement_baseline(&spec, &tech).unwrap();
    println!(
        "baseline: {} exploitable sites in {} regions, {:.0} free tracks, \
         TNS {:.1} ps, power {:.3} mW, {} DRC",
        base.security.er_sites,
        base.security.regions.len(),
        base.security.er_tracks,
        base.tns_ps(),
        base.power_mw(),
        base.drc
    );

    // Harden with the default Cell Shift configuration (PRESENT is a
    // timing-loose design — exactly CS territory, §III-B1).
    let cfg = FlowConfig::cell_shift_default();
    let metrics = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
    println!(
        "hardened: security {:.3} (baseline = 1.0), {} sites / {:.0} tracks remain, \
         TNS {:.1} ps, power {:.3} mW, {} DRC",
        metrics.security,
        metrics.er_sites,
        metrics.er_tracks,
        metrics.tns_ps,
        metrics.power_mw,
        metrics.drc
    );
    println!(
        "risk of Trojan insertion reduced by {:.1} %",
        (1.0 - metrics.security) * 100.0
    );
}
