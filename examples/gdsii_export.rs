//! Tapeout export: fill the hardened layout, write a real GDSII stream to
//! disk (the artifact the untrusted foundry receives), parse it back, and
//! verify the geometry survived byte-exact.
//!
//! ```text
//! cargo run --release --example gdsii_export
//! ```

use gdsii::{layout_to_gds, GdsLibrary};
use gdsii_guard::prelude::*;
use tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::nangate45_like();
    let spec = netlist::bench::spec_by_name("TDEA").expect("known benchmark");
    let base = implement_baseline(&spec, &tech).unwrap();
    let mut hardened = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .snapshot();

    // Tapeout hygiene: tile the remaining whitespace with filler cells.
    let hl = std::sync::Arc::make_mut(&mut hardened.layout);
    let fillers = layout::insert_fillers(hl.occupancy_mut(), &tech);
    let lib = layout_to_gds(&hardened.layout, &tech, Some(&hardened.routing));
    let bytes = lib.to_bytes();
    let path = std::env::temp_dir().join("tdea_hardened.gds");
    std::fs::write(&path, &bytes)?;
    println!(
        "wrote {} ({} bytes, {} structures, {} elements, {} filler cells)",
        path.display(),
        bytes.len(),
        lib.structs.len(),
        lib.num_elements(),
        fillers
    );

    let back = GdsLibrary::from_bytes(&std::fs::read(&path)?)?;
    assert_eq!(back, lib, "GDSII round trip must be lossless");
    let top = back.find_struct("TOP").expect("top cell present");
    println!(
        "parsed back OK: top cell instantiates {} elements; library '{}' at {} m/DBU",
        top.elements.len(),
        back.name,
        back.meters_per_dbu
    );
    Ok(())
}
