//! Full five-way defense comparison on the two smallest real benchmarks —
//! a fast, deterministic slice of the Fig. 4 / Table II sweep that runs in
//! the test suite.

use gdsii_guard::prelude::*;
use netlist::bench;
use secmetrics::security_score;
use tech::Technology;

#[test]
fn present_defense_sweep_has_paper_shape() {
    let tech = Technology::nangate45_like();
    let spec = bench::spec_by_name("PRESENT").expect("known design");
    let base = implement_baseline(&spec, &tech).unwrap();

    let bisa = defenses::apply_bisa(&base, &tech);
    let ba = defenses::apply_ba(&base, &tech);
    let gg = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .metrics();

    let sec = |s: &gdsii_guard::Snapshot| security_score(&s.security, &base.security, 0.5);

    // Fill-based defenses crush the metric…
    assert!(sec(&bisa) < 0.05, "BISA {}", sec(&bisa));
    assert!(sec(&ba) < 0.30, "Ba {}", sec(&ba));
    // …but pay power; GDSII-Guard stays within the paper's power bound.
    assert!(bisa.power_mw() > base.power_mw() * 1.05);
    assert!(gg.power_mw <= 1.2 * base.power_mw());
    // GDSII-Guard improves security markedly without breaking timing.
    assert!(gg.security < 0.5, "GG {}", gg.security);
    assert!(gg.tns_ps >= base.tns_ps() - 50.0, "GG TNS {}", gg.tns_ps);
}

#[test]
fn openmsp430_1_loose_design_prefers_cell_shift() {
    let tech = Technology::nangate45_like();
    let spec = bench::spec_by_name("openMSP430_1").expect("known design");
    let base = implement_baseline(&spec, &tech).unwrap();
    assert_eq!(base.tns_ps(), 0.0, "openMSP430_1 closes timing at baseline");
    let cs = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .metrics();
    let lda = FlowRun::new(&base, &tech, &FlowConfig::lda_default())
        .unchecked()
        .metrics();
    assert!(
        cs.security < lda.security,
        "loose design: CS {} should beat LDA {}",
        cs.security,
        lda.security
    );
    assert_eq!(cs.tns_ps, 0.0, "CS must not break a timing-clean design");
}
