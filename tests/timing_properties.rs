//! Cross-crate timing properties: STA consistency under layout and
//! constraint perturbations.

use gdsii_guard::prelude::*;
use netlist::bench;
use tech::Technology;

#[test]
fn slack_decreases_when_clock_tightens() {
    let tech = Technology::nangate45_like();
    let mut specs = Vec::new();
    for factor in [1.5, 1.0, 0.7] {
        let mut s = bench::tiny_spec();
        s.period_factor = factor;
        specs.push(s);
    }
    let worst: Vec<f64> = specs
        .iter()
        .map(|s| {
            implement_baseline(s, &tech)
                .unwrap()
                .timing
                .worst_slack_ps()
        })
        .collect();
    assert!(worst[0] > worst[1] && worst[1] > worst[2], "{worst:?}");
}

#[test]
fn endpoint_count_matches_flops_plus_outputs() {
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let d = snap.layout.design();
    let expect = d.num_flops(&tech) + d.primary_outputs.len();
    assert_eq!(snap.timing.endpoint_slacks().len(), expect);
}

#[test]
fn net_slack_lower_bounds_endpoint_slack() {
    // The worst net slack equals the worst endpoint slack (paths end at
    // endpoints), and no net reports less slack than the global worst.
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let worst_ep = snap.timing.worst_slack_ps();
    let design = snap.layout.design();
    let mut worst_net = f64::INFINITY;
    for (id, _) in design.nets_iter() {
        let s = snap.timing.net_slack_ps(id);
        assert!(
            s >= worst_ep - 1.0,
            "net {} slack {s} below global worst {worst_ep}",
            id.0
        );
        worst_net = worst_net.min(s);
    }
    assert!((worst_net - worst_ep).abs() < 1.0);
}

#[test]
fn timing_is_a_pure_function_of_the_layout() {
    let tech = Technology::nangate45_like();
    let a = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let b = evaluate(a.layout.clone(), &tech).unwrap();
    assert_eq!(a.tns_ps(), b.tns_ps());
    assert_eq!(a.timing.worst_slack_ps(), b.timing.worst_slack_ps());
    assert_eq!(a.drc, b.drc);
    assert_eq!(a.security.er_sites, b.security.er_sites);
}

#[test]
fn scrambling_placement_does_not_improve_worst_slack() {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut good = layout::Layout::empty_floorplan(design.clone(), &tech, 0.6);
    place::global_place(&mut good, &tech, 1);
    place::refine_wirelength(&mut good, &tech, 3, 1);
    let good_snap = evaluate(good, &tech).unwrap();

    // Adversarial placement: reverse the id order so connected cells land
    // far apart.
    let mut bad = layout::Layout::empty_floorplan(design, &tech, 0.6);
    place::global_place(&mut bad, &tech, 1);
    // Swap random cell pairs to destroy locality.
    let occ = bad.occupancy_mut();
    let n = 50u32;
    for i in 0..n {
        let a = netlist::CellId(i);
        let b = netlist::CellId(200 - i);
        let (Some(pa), Some(pb)) = (occ.cell_pos(a), occ.cell_pos(b)) else {
            continue;
        };
        let (Some(wa), Some(wb)) = (occ.cell_width(a), occ.cell_width(b)) else {
            continue;
        };
        if wa == wb {
            occ.remove_cell(a).unwrap();
            occ.remove_cell(b).unwrap();
            occ.place_cell(a, wa, pb).unwrap();
            occ.place_cell(b, wb, pa).unwrap();
        }
    }
    let bad_snap = evaluate(bad, &tech).unwrap();
    assert!(good_snap.timing.worst_slack_ps() >= bad_snap.timing.worst_slack_ps() - 1.0);
}
