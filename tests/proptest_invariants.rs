//! Property-based tests over the core data structures and invariants.

use geom::{Interval, Point, Rect, SitePos};
use layout::{Floorplan, Occupancy};
use netlist::CellId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rect intersection is commutative, contained in both operands, and
    /// consistent with `intersects`.
    #[test]
    fn rect_intersection_properties(
        ax in -1000i64..1000, ay in -1000i64..1000, aw in 0i64..500, ah in 0i64..500,
        bx in -1000i64..1000, by in -1000i64..1000, bw in 0i64..500, bh in 0i64..500,
    ) {
        let a = Rect::from_wh(Point::new(ax, ay), aw, ah);
        let b = Rect::from_wh(Point::new(bx, by), bw, bh);
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        prop_assert_eq!(i1.is_some(), a.intersects(&b));
        if let Some(i) = i1 {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
        // Union always contains both.
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    /// Interval overlap agrees with pointwise membership.
    #[test]
    fn interval_overlap_is_pointwise(
        alo in 0u32..100, alen in 0u32..50,
        blo in 0u32..100, blen in 0u32..50,
    ) {
        let a = Interval::new(alo, alo + alen);
        let b = Interval::new(blo, blo + blen);
        let pointwise = (a.lo..a.hi).any(|x| b.contains(x));
        prop_assert_eq!(a.overlaps(&b), pointwise);
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.len() <= a.len().min(b.len()));
            prop_assert!((i.lo..i.hi).all(|x| a.contains(x) && b.contains(x)));
        }
    }

    /// Any sequence of place / move / remove operations leaves the
    /// occupancy grid consistent: occupied-site accounting matches and no
    /// two cells overlap.
    #[test]
    fn occupancy_ops_preserve_invariants(ops in proptest::collection::vec(
        (0u32..20, 0u32..8, 0u32..30, 1u32..6, 0u8..3), 1..60
    )) {
        let fp = Floorplan::new(8, 30);
        let mut occ = Occupancy::new(fp);
        let mut live: std::collections::HashMap<u32, u32> = Default::default();
        for (cell, row, col, width, op) in ops {
            let id = CellId(cell);
            match op {
                0 => {
                    if !live.contains_key(&cell)
                        && occ.place_cell(id, width, SitePos::new(row, col)).is_ok()
                    {
                        live.insert(cell, width);
                    }
                }
                1 => {
                    if live.contains_key(&cell) {
                        let _ = occ.move_cell(id, SitePos::new(row, col));
                    }
                }
                _ => {
                    if occ.remove_cell(id).ok().flatten().is_some() {
                        live.remove(&cell);
                    }
                }
            }
            // Ground truth: total occupied sites equals the sum of the
            // widths of the live cells.
            let expect: u64 = live.values().map(|&w| w as u64).sum();
            prop_assert_eq!(occ.occupied_sites(), expect);
        }
        // No site is claimed by a dead cell and footprints are coherent.
        for row in 0..8 {
            for col in 0..30 {
                if let layout::SiteState::Cell(c) = occ.state(SitePos::new(row, col)) {
                    prop_assert!(live.contains_key(&c.0));
                }
            }
        }
        for (&cell, &w) in &live {
            let pos = occ.cell_pos(CellId(cell)).expect("live cell is placed");
            for i in 0..w {
                prop_assert_eq!(
                    occ.state(SitePos::new(pos.row, pos.col + i)),
                    layout::SiteState::Cell(CellId(cell))
                );
            }
        }
    }

    /// The empty runs of a row partition exactly the non-occupied sites.
    #[test]
    fn empty_runs_partition_free_space(cells in proptest::collection::vec(
        (0u32..28, 1u32..5), 0..8
    )) {
        let fp = Floorplan::new(1, 32);
        let mut occ = Occupancy::new(fp);
        for (i, (col, w)) in cells.into_iter().enumerate() {
            let _ = occ.place_cell(CellId(i as u32), w, SitePos::new(0, col));
        }
        let runs = occ.empty_runs(0);
        // Runs are disjoint, sorted, maximal, and cover every empty site.
        let mut covered = [false; 32];
        for w in runs.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "runs must be separated by cells");
        }
        for r in &runs {
            for c in r.lo..r.hi {
                prop_assert_eq!(occ.state(SitePos::new(0, c)), layout::SiteState::Empty);
                covered[c as usize] = true;
            }
        }
        for c in 0..32u32 {
            let is_empty = occ.state(SitePos::new(0, c)) == layout::SiteState::Empty;
            prop_assert_eq!(covered[c as usize], is_empty);
        }
    }

    /// GDSII reals survive a round trip for the magnitudes layouts use.
    #[test]
    fn gdsii_real_round_trip(mantissa in 1i64..1_000_000, exp in -12i32..6) {
        let v = mantissa as f64 * 10f64.powi(exp);
        let enc = gdsii::write_real8(v);
        let dec = gdsii::read_real8(&enc);
        prop_assert!(((dec - v) / v).abs() < 1e-12, "{v} -> {dec}");
    }

    /// Security scores are always in [0, 1] when the optimized layout has
    /// no more exploitable resources than the baseline.
    #[test]
    fn security_score_bounded(
        base_sites in 1u64..100_000, base_tracks in 1.0f64..100_000.0,
        frac_sites in 0.0f64..1.0, frac_tracks in 0.0f64..1.0,
        alpha in 0.0f64..1.0,
    ) {
        let mk = |sites: u64, tracks: f64| secmetrics::RegionAnalysis {
            regions: vec![],
            er_sites: sites,
            er_tracks: tracks,
            distances: vec![],
        };
        let base = mk(base_sites, base_tracks);
        let opt = mk(
            (base_sites as f64 * frac_sites) as u64,
            base_tracks * frac_tracks,
        );
        let s = secmetrics::security_score(&opt, &base, alpha);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "score {s}");
    }
}
