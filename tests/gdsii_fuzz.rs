//! Robustness: the GDSII reader must never panic, no matter the input —
//! it either parses or returns a structured error.

use gdsii::GdsLibrary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: parse or error, never panic.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = GdsLibrary::from_bytes(&bytes);
    }

    /// Truncations of a valid stream: parse or error, never panic, and a
    /// truncated stream must never silently parse as complete.
    #[test]
    fn reader_handles_truncation(cut in 0usize..100) {
        let mut lib = GdsLibrary::new("T");
        let mut s = gdsii::GdsStruct::new("TOP");
        s.elements.push(gdsii::GdsElement::Boundary {
            layer: 1,
            xy: vec![(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)],
        });
        lib.structs.push(s);
        let bytes = lib.to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let r = GdsLibrary::from_bytes(&bytes[..cut]);
        prop_assert!(r.is_err(), "truncated stream parsed: cut at {cut}");
    }

    /// Single-byte corruptions: parse or error, never panic.
    #[test]
    fn reader_survives_bit_flips(pos in 0usize..64, val in any::<u8>()) {
        let lib = GdsLibrary::new("CORRUPT");
        let mut bytes = lib.to_bytes();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = val;
        let _ = GdsLibrary::from_bytes(&bytes);
    }
}
