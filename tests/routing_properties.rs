//! Cross-crate routing properties: conservation of usage under rip-up,
//! RC sanity, and congestion response to density.

use gdsii_guard::prelude::*;
use geom::GcellPos;
use netlist::{bench, NetDriver, Sink};
use tech::{RouteRule, Technology};

fn total_usage(r: &route::RoutingState) -> f64 {
    let g = r.grid();
    let mut t = 0.0;
    for y in 0..g.ny() {
        for x in 0..g.nx() {
            let p = GcellPos::new(x, y);
            t += g.capacity_all_layers() - g.free_tracks_all_layers(p);
        }
    }
    t
}

#[test]
fn routing_usage_matches_committed_segments() {
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let r = &snap.routing;
    // Every multi-cell net with at least two distinct terminal gcells has
    // segments; every segment stays on its layer's direction.
    let design = snap.layout.design();
    for (nid, net) in design.nets_iter() {
        if Some(nid) == design.clock {
            continue;
        }
        let mut terminals: Vec<GcellPos> = Vec::new();
        let mut push = |c: netlist::CellId| {
            let g = r.grid().gcell_of_point(snap.layout.cell_center(c, &tech));
            if !terminals.contains(&g) {
                terminals.push(g);
            }
        };
        if let NetDriver::Cell(c) = net.driver {
            push(c);
        }
        for s in &net.sinks {
            if let Sink::CellInput { cell, .. } = s {
                push(*cell);
            }
        }
        if terminals.len() >= 2 {
            assert!(
                !r.net_segs(nid).is_empty(),
                "net {} spans gcells but has no route",
                nid.0
            );
        }
    }
    assert!(total_usage(r) > 0.0);
}

#[test]
fn rc_scales_with_route_length() {
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let design = snap.layout.design();
    // Aggregate check: long routes carry more parasitics than short ones.
    let mut pairs: Vec<(u32, f64)> = design
        .nets_iter()
        .filter(|(id, _)| Some(*id) != design.clock)
        .map(|(id, _)| {
            let gcells: u32 = snap.routing.net_segs(id).iter().map(|s| s.gcells()).sum();
            (gcells, snap.routing.net_rc(id).cap)
        })
        .filter(|(g, _)| *g > 0)
        .collect();
    pairs.sort_unstable_by_key(|(g, _)| *g);
    let n = pairs.len();
    assert!(n > 10, "enough routed nets to compare");
    let short_avg: f64 = pairs[..n / 4].iter().map(|(_, c)| c).sum::<f64>() / (n / 4) as f64;
    let long_avg: f64 =
        pairs[3 * n / 4..].iter().map(|(_, c)| c).sum::<f64>() / (n - 3 * n / 4) as f64;
    assert!(
        long_avg > short_avg,
        "longer routes must carry more capacitance: {long_avg} vs {short_avg}"
    );
}

#[test]
fn ndr_trades_tracks_for_resistance_end_to_end() {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut layout = layout::Layout::empty_floorplan(design, &tech, 0.6);
    place::global_place(&mut layout, &tech, 3);
    let base = route::route_design(&layout, &tech);
    layout.set_route_rule(RouteRule::uniform(1.5));
    let wide = route::route_design(&layout, &tech);
    let free = |r: &route::RoutingState| {
        let g = r.grid();
        let mut t = 0.0;
        for y in 0..g.ny() {
            for x in 0..g.nx() {
                t += g.free_tracks_all_layers(GcellPos::new(x, y));
            }
        }
        t
    };
    assert!(free(&wide) < free(&base));
    let design = layout.design();
    let res = |r: &route::RoutingState| -> f64 {
        design
            .nets_iter()
            .filter(|(id, _)| Some(*id) != design.clock)
            .map(|(id, _)| r.net_rc(id).res)
            .sum()
    };
    assert!(res(&wide) < res(&base));
}

#[test]
fn routing_is_deterministic_and_bounded_by_capacity() {
    let tech = Technology::nangate45_like();
    let design = bench::generate(&bench::tiny_spec(), &tech);
    let mut layout = layout::Layout::empty_floorplan(design, &tech, 0.6);
    place::global_place(&mut layout, &tech, 3);
    let a = route::route_design(&layout, &tech);
    let b = route::route_design(&layout, &tech);
    assert_eq!(a.total_wirelength_um(), b.total_wirelength_um());
    let g = a.grid();
    for y in 0..g.ny() {
        for x in 0..g.nx() {
            let p = GcellPos::new(x, y);
            let free = g.free_tracks_all_layers(p);
            assert!(free >= 0.0 && free <= g.capacity_all_layers() + 1e-9);
            assert_eq!(free, b.grid().free_tracks_all_layers(p));
        }
    }
}
