//! End-to-end integration: benchmark generation → placement → routing →
//! analysis → GDSII-Guard flow → hardened-layout properties, across crate
//! boundaries.

use gdsii_guard::prelude::*;
use netlist::bench;
use secmetrics::THRESH_ER;
use tech::Technology;

fn tight_tiny() -> bench::DesignSpec {
    let mut spec = bench::tiny_spec();
    spec.period_factor = 0.95;
    spec
}

#[test]
fn baseline_pipeline_produces_coherent_snapshot() {
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    snap.layout
        .check_consistency(&tech)
        .expect("placement consistent");
    snap.layout.design().validate(&tech).expect("netlist valid");
    assert!(
        snap.security.er_sites > 0,
        "a loose baseline is exploitable"
    );
    assert!(snap.power_mw() > 0.0);
    assert!(snap.routing.total_wirelength_um() > 0.0);
    // Every exploitable region respects the threshold.
    for r in &snap.security.regions {
        assert!(r.sites >= THRESH_ER as u64);
    }
}

#[test]
fn cell_shift_flow_hardens_loose_design() {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let hardened = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .snapshot();
    let sec = secmetrics::security_score(&hardened.security, &base.security, 0.5);
    assert!(
        sec < 0.5,
        "CS must remove most exploitable space, got {sec}"
    );
    hardened
        .layout
        .check_consistency(&tech)
        .expect("still consistent");
    // The netlist itself is untouched — only placement moved.
    assert_eq!(
        hardened.layout.design().cells.len(),
        base.layout.design().cells.len()
    );
    // Critical cells did not move (preprocessing locked them).
    for &c in &base.layout.design().critical_cells {
        assert_eq!(base.layout.cell_pos(c), hardened.layout.cell_pos(c));
    }
}

#[test]
fn lda_flow_hardens_tight_design_with_bounded_timing_cost() {
    // CAST is the timing-tight design LDA targets (the tiny test spec has
    // too few tiles for density redistribution to be meaningful).
    let tech = Technology::nangate45_like();
    let spec = bench::spec_by_name("CAST").expect("known benchmark");
    let base = implement_baseline(&spec, &tech).unwrap();
    let cfg = FlowConfig {
        op: OpSelect::Lda { n: 8, n_iter: 1 },
        scales: [1.0; 10],
    };
    let m = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
    assert!(
        m.security < 0.95,
        "LDA should improve security, got {}",
        m.security
    );
    // Power stays within the paper's hard constraint.
    assert!(m.power_mw <= 1.2 * base.power_mw());
    let _ = tight_tiny();
}

#[test]
fn rws_reduces_tracks_at_a_wire_cost() {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let mut cfg = FlowConfig::cell_shift_default();
    let before = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
    cfg.scales = [1.0, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5];
    let after = FlowRun::new(&base, &tech, &cfg).unchecked().metrics();
    // Track metric falls at least as fast as the site metric when wires
    // widen (the Fig. 4 observation that tracks trail sites by ~15 %).
    let ratio = |m: &gdsii_guard::FlowMetrics| {
        if m.er_sites == 0 {
            0.0
        } else {
            m.er_tracks / m.er_sites as f64
        }
    };
    assert!(ratio(&after) <= ratio(&before) + 1e-9);
}

#[test]
fn defenses_keep_netlist_functionality() {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    for (name, snap) in [
        ("icas", defenses::apply_icas(&base, &tech)),
        ("bisa", defenses::apply_bisa(&base, &tech)),
        ("ba", defenses::apply_ba(&base, &tech)),
    ] {
        snap.layout
            .design()
            .validate(&tech)
            .unwrap_or_else(|e| panic!("{name} broke the netlist: {e}"));
        snap.layout
            .check_consistency(&tech)
            .unwrap_or_else(|e| panic!("{name} broke placement: {e}"));
        // Original cells and their connectivity are untouched.
        let d0 = base.layout.design();
        let d1 = snap.layout.design();
        for (id, cell) in d0.cells_iter() {
            assert_eq!(cell.kind, d1.cell(id).kind, "{name} changed cell {}", id.0);
            assert_eq!(
                cell.inputs,
                d1.cell(id).inputs,
                "{name} rewired cell {}",
                id.0
            );
        }
    }
}

#[test]
fn hardened_layout_exports_to_gdsii_and_back() {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let mut hardened = FlowRun::new(&base, &tech, &FlowConfig::cell_shift_default())
        .unchecked()
        .snapshot();
    layout::insert_fillers(
        std::sync::Arc::make_mut(&mut hardened.layout).occupancy_mut(),
        &tech,
    );
    let lib = gdsii::layout_to_gds(&hardened.layout, &tech, Some(&hardened.routing));
    let back = gdsii::GdsLibrary::from_bytes(&lib.to_bytes()).expect("parse own output");
    assert_eq!(back, lib);
    let top = back.find_struct("TOP").expect("top structure");
    assert!(top.elements.len() >= hardened.layout.design().cells.len());
}
