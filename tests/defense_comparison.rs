//! Cross-defense ordering properties on one design — the qualitative
//! structure of Fig. 4 and Table II that must hold for any seed.

use gdsii_guard::prelude::*;
use netlist::bench;
use secmetrics::security_score;
use tech::Technology;

struct Sweep {
    base: gdsii_guard::Snapshot,
    icas: gdsii_guard::Snapshot,
    bisa: gdsii_guard::Snapshot,
    ba: gdsii_guard::Snapshot,
}

fn sweep() -> (Technology, Sweep) {
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let icas = defenses::apply_icas(&base, &tech);
    let bisa = defenses::apply_bisa(&base, &tech);
    let ba = defenses::apply_ba(&base, &tech);
    (
        tech,
        Sweep {
            base,
            icas,
            bisa,
            ba,
        },
    )
}

#[test]
fn security_ordering_matches_fig4() {
    let (_, s) = sweep();
    let sec = |snap: &gdsii_guard::Snapshot| security_score(&snap.security, &s.base.security, 0.5);
    let (icas, bisa, ba) = (sec(&s.icas), sec(&s.bisa), sec(&s.ba));
    // Paper Fig. 4: BISA ≈ strongest fill, Ba weaker than BISA, ICAS
    // weakest of the three.
    assert!(bisa <= ba + 0.05, "BISA {bisa} should beat Ba {ba}");
    assert!(ba < icas, "Ba {ba} should beat ICAS {icas}");
    assert!(icas < 1.0, "every defense improves on the baseline");
}

#[test]
fn cost_ordering_matches_table2() {
    let (_, s) = sweep();
    // BISA adds the most logic → the most power.
    assert!(s.bisa.power_mw() > s.ba.power_mw());
    assert!(s.ba.power_mw() >= s.base.power_mw());
    // Fill-based defenses cannot improve timing.
    assert!(s.bisa.tns_ps() <= s.base.tns_ps() + 1e-9);
    // And BISA congests at least as much as Ba does.
    assert!(s.bisa.drc >= s.ba.drc);
}

#[test]
fn attack_resistance_tracks_the_metrics() {
    let (tech, s) = sweep();
    let rate = |snap: &gdsii_guard::Snapshot| {
        secmetrics::attack::battery_success_rate(&snap.security, &tech)
    };
    assert!(
        rate(&s.base) >= rate(&s.bisa),
        "hardening must not make attacks easier"
    );
    assert_eq!(
        rate(&s.bisa),
        0.0,
        "BISA leaves no room for any battery Trojan"
    );
}
