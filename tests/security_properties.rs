//! Cross-crate security-metric properties: monotonicity of the exploitable
//! region analysis under the operations defenses perform.

use gdsii_guard::prelude::*;
use netlist::bench;
use secmetrics::analyze_regions;
use tech::Technology;

#[test]
fn thresh_er_is_monotone() {
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let mut last = u64::MAX;
    for thresh in [4u32, 12, 20, 40, 100] {
        let a = analyze_regions(&snap.layout, &snap.routing, &snap.timing, &tech, thresh);
        assert!(a.er_sites <= last, "ERsites must shrink as Thresh_ER grows");
        last = a.er_sites;
        // Regions honor the threshold.
        assert!(a.regions.iter().all(|r| r.sites >= thresh as u64));
    }
}

#[test]
fn fillers_do_not_change_security() {
    // Definition 2.2: filler cells are exploitable; adding them must leave
    // ERsites untouched.
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let mut filled = layout::Layout::clone(&base.layout);
    layout::insert_fillers(filled.occupancy_mut(), &tech);
    let snap = evaluate(filled, &tech).unwrap();
    assert_eq!(snap.security.er_sites, base.security.er_sites);
}

#[test]
fn distances_respond_to_constraint_looseness() {
    let tech = Technology::nangate45_like();
    let sum_d = |factor: f64| -> i64 {
        let mut spec = bench::tiny_spec();
        spec.period_factor = factor;
        let snap = implement_baseline(&spec, &tech).unwrap();
        snap.security.distances.iter().map(|(_, d)| *d).sum()
    };
    assert!(sum_d(2.0) > sum_d(0.9), "looser clock → longer reach");
}

#[test]
fn removing_free_space_never_raises_er_sites() {
    // Occupying previously-free sites (with locked dummy placement) can
    // only shrink the exploitable area.
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let hardened = defenses::apply_ba(&base, &tech);
    assert!(hardened.security.er_sites <= base.security.er_sites);
    let hardened = defenses::apply_bisa(&base, &tech);
    assert!(hardened.security.er_sites <= base.security.er_sites);
}

#[test]
fn region_runs_lie_within_some_distance_mask() {
    // Every exploitable site must be within the exploitable distance of at
    // least one critical cell (Definition 2.2, prerequisite 2).
    let tech = Technology::nangate45_like();
    let snap = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let layout = &snap.layout;
    let centers: Vec<(geom::Point, i64)> = snap
        .security
        .distances
        .iter()
        .filter(|(_, d)| *d > 0)
        .map(|&(c, d)| (layout.cell_center(c, &tech), d))
        .collect();
    for region in &snap.security.regions {
        for &(row, iv) in &region.rows {
            let fp = layout.floorplan();
            for col in iv.lo..iv.hi {
                let p = fp.site_center(geom::SitePos::new(row, col));
                let within = centers
                    .iter()
                    .any(|&(c, d)| (p.x - c.x).abs() <= d + 200 && (p.y - c.y).abs() <= d + 1_400);
                assert!(within, "site ({row},{col}) outside every distance mask");
            }
        }
    }
}

#[test]
fn attack_simulator_agrees_with_er_sites_zero() {
    // If the analysis finds no region, no battery Trojan can be inserted.
    let tech = Technology::nangate45_like();
    let base = implement_baseline(&bench::tiny_spec(), &tech).unwrap();
    let bisa = defenses::apply_bisa(&base, &tech);
    if bisa.security.er_sites == 0 {
        assert_eq!(
            secmetrics::attack::battery_success_rate(&bisa.security, &tech),
            0.0
        );
    }
    // And on the exploitable baseline, the smallest Trojan finds a home.
    let small = secmetrics::TrojanSpec::a2_analog();
    let outcome = secmetrics::simulate_attack(&base.security, &tech, &small);
    assert!(outcome.success, "loose baseline must be attackable");
}
