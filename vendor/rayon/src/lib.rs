//! Vendored minimal stand-in for the `rayon` API surface this workspace
//! uses (offline build): scoped task spawning on a bounded pool of OS
//! threads, `join`, and `RAYON_NUM_THREADS` thread-count discovery.
//!
//! Semantics vs real rayon: tasks spawned on a [`Scope`] are queued and
//! only start executing once the scope closure returns; [`scope`] still
//! provides rayon's join guarantee — it does not return until every
//! spawned task (including tasks spawned by tasks) has finished. Tasks
//! must therefore not wait on each other's side effects from *inside* the
//! scope closure, which no caller in this workspace does. [`join`] runs
//! its two closures sequentially on the calling thread; that is a legal
//! rayon schedule (rayon may execute both halves inline when no worker
//! steals), so callers relying only on `join`'s result semantics are
//! unaffected.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the global pool would use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer, else the machine's available parallelism.
///
/// Read on every call (not cached) so tests can vary the environment
/// variable between cases.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs both closures and returns both results. This shim executes them
/// sequentially on the calling thread — one of the schedules real rayon's
/// work-stealing `join` may produce.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope onto which tasks borrowing the enclosing stack frame can be
/// spawned; see [`scope`].
pub struct Scope<'scope> {
    queue: Mutex<VecDeque<Task<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` for execution before the enclosing [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.queue
            .lock()
            .expect("scope queue")
            .push_back(Box::new(f));
    }
}

/// Creates a scope, runs `op` on the calling thread, then executes every
/// spawned task on up to [`current_num_threads`] workers. Returns `op`'s
/// result after all tasks (including nested spawns) have completed.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    scope_with(current_num_threads(), op)
}

/// [`scope`] with an explicit worker-thread bound.
pub fn scope_with<'scope, OP, R>(threads: usize, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        queue: Mutex::new(VecDeque::new()),
    };
    let result = op(&scope);
    let queued = scope.queue.lock().expect("scope queue").len();
    if queued == 0 {
        return result;
    }
    let workers = threads.max(1).min(queued);
    if workers == 1 {
        // Inline drain: tasks may spawn further tasks while running.
        loop {
            let task = scope.queue.lock().expect("scope queue").pop_front();
            match task {
                Some(t) => t(&scope),
                None => break,
            }
        }
        return result;
    }
    // A worker exits only when the queue is empty AND no task is still
    // running (a running task may spawn more work).
    let active = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let task = {
                    let mut q = scope.queue.lock().expect("scope queue");
                    let t = q.pop_front();
                    if t.is_some() {
                        active.fetch_add(1, Ordering::SeqCst);
                    }
                    t
                };
                match task {
                    Some(t) => {
                        t(&scope);
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        if active.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    result
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for bounded pools.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`]; construction cannot fail in
/// this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-derived) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A bounded worker pool. This shim holds no persistent threads; each
/// [`ThreadPool::scope`] spins up at most `threads` scoped OS threads.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's worker-thread bound.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` on the calling thread (the shim has no dedicated pool
    /// threads to migrate onto).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// [`scope`] bounded by this pool's thread count.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_with(self.threads, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task() {
        let sum = AtomicU64::new(0);
        scope(|s| {
            for i in 1..=100u64 {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let hits = AtomicU64::new(0);
        scope_with(4, |s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_thread_drains_inline() {
        let sum = AtomicU64::new(0);
        scope_with(1, |s| {
            for i in 0..10u64 {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 45);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_builder_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let n = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let n = &n;
                s.spawn(move |_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
        assert_eq!(pool.install(|| 7), 7);
    }
}
