//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::default().sample_size(n)`, benchmark groups,
//! `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and reports min / mean / max wall-clock per iteration.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times routine-only
/// either way; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per routine invocation (large inputs).
    LargeInput,
    /// Small per-iteration inputs.
    SmallInput,
    /// Every invocation gets a fresh input.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing the parent driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over warm-up plus `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` product per sample; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {id}: no samples collected");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    eprintln!(
        "  {id}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group: plain form `criterion_group!(name, fns...)`
/// or configured form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // warm-up + 5 samples
        assert_eq!(ran, 6);
    }

    #[test]
    fn groups_prefix_ids_and_batch_setup_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut setups = 0u32;
        group.bench_function("inner", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
    }
}
