//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the [`proptest!`] test macro, range/tuple/`vec`/`any`
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test RNG; failures panic
//! with the rendered values (no shrinking — cases are small by design).

use rand::prelude::*;

/// Runner configuration: number of generated cases per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to generate.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. Strategies are sampled (not shrunk) by this shim.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.gen_range(lo..hi) }
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// A constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(core::marker::PhantomData)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with a length drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` grammar needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod runner {
    pub use rand::prelude::{Rng, SeedableRng, StdRng};

    /// Deterministic per-test seed: stable across runs, distinct per name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Prints the failing case's rendered inputs if the property body
    /// unwinds (the body may consume the inputs, so they are rendered
    /// up front and reported from `Drop`).
    pub struct CaseReporter(pub Option<String>);

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Some(s) = self.0.take() {
                    eprintln!("{s}");
                }
            }
        }
    }

    impl CaseReporter {
        /// Marks the case as passed: nothing is printed on drop.
        pub fn passed(&mut self) {
            self.0 = None;
        }
    }
}

/// Property-test macro: each `fn` body runs `cases` times with inputs drawn
/// from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::runner::StdRng as $crate::runner::SeedableRng>::seed_from_u64(
                    $crate::runner::seed_for(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let mut rendered = format!(
                        "proptest case {case} of {} failed with inputs:",
                        stringify!($name)
                    );
                    $(rendered.push_str(&format!(
                        "\n  {} = {:?}",
                        stringify!($arg),
                        $arg
                    ));)+
                    let mut reporter = $crate::runner::CaseReporter(Some(rendered));
                    $body
                    reporter.passed();
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(pair in (0u32..10, -5i64..5), f in 0.0f64..1.0) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = <crate::runner::StdRng as crate::runner::SeedableRng>::seed_from_u64(1);
        let mut b = <crate::runner::StdRng as crate::runner::SeedableRng>::seed_from_u64(1);
        let s = 0u32..100;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
