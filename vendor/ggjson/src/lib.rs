//! Tiny JSON library for the workspace's experiment-result caching: a
//! [`Json`] value model, a strict parser, a pretty-printer, the
//! [`ToJson`] / [`FromJson`] conversion traits, and the [`json_struct!`]
//! macro deriving both for plain field structs.
//!
//! Numbers are stored as `f64`; every integer the workspace serializes is
//! far below 2^53, so round-trips are exact. Non-finite floats serialize as
//! tagged strings (`"inf"`, `"-inf"`, `"nan"`) and parse back losslessly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` when it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Types convertible to a [`Json`] value.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses from a JSON value; `None` on shape mismatch.
    fn from_json(j: &Json) -> Option<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Option<Self> {
        Some(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Num(*self)
        } else if self.is_nan() {
            Json::Str("nan".into())
        } else if *self > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Num(n) => Some(*n),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Option<Self> {
                let n = j.as_num()?;
                let v = n as $t;
                // Reject lossy conversions (fractions, out of range).
                if v as f64 == n { Some(v) } else { None }
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Option<Self> {
        j.as_str().map(str::to_owned)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => None,
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Arr(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_json(item)?;
                }
                Some(out)
            }
            _ => None,
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Null => Some(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Option<Self> {
        match j {
            Json::Arr(items) if items.len() == 2 => {
                Some((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => None,
        }
    }
}

/// Derives [`ToJson`] and [`FromJson`] for a plain field struct.
///
/// ```
/// #[derive(Debug, Clone, PartialEq)]
/// struct P { x: u32, label: String }
/// ggjson::json_struct!(P { x, label });
/// # use ggjson::{FromJson, ToJson};
/// let p = P { x: 3, label: "a".into() };
/// assert_eq!(P::from_json(&p.to_json()), Some(p.clone()));
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(j: &$crate::Json) -> Option<Self> {
                Some(Self {
                    $($field: $crate::FromJson::from_json(j.get(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Serializes a value as pretty-printed JSON text.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0);
    out.push('\n');
    out
}

/// Serializes a value as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string_pretty(value).into_bytes()
}

/// Serializes a value as compact single-line JSON (no newlines, no
/// indentation) — the framing format of newline-delimited protocols.
/// Control characters inside strings are escaped, so the output never
/// contains a literal newline.
pub fn to_string_compact<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json());
    out
}

fn write_compact(out: &mut String, v: &Json) {
    match v {
        Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => write_value(out, v, 0),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    from_str(text)
}

/// Parses a value from JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Option<T> {
    T::from_json(&parse(text)?)
}

/// Parses JSON text into a [`Json`] value; `None` on any syntax error or
/// trailing garbage.
pub fn parse(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn write_value(out: &mut String, v: &Json, indent: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            // `{}` on f64 prints the shortest round-tripping decimal.
            if n.fract() == 0.0 && n.abs() < 1e15 {
                let _ = write!(out, "{:.1}", n);
                // Integral values print as `x.0` so the type is visible;
                // trim to serde_json-style integers when exact.
                if *n == n.trunc() && out.ends_with(".0") {
                    out.truncate(out.len() - 2);
                }
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        match *self.bytes.get(self.pos)? {
            b'n' => self.eat_lit("null").then_some(Json::Null),
            b't' => self.eat_lit("true").then_some(Json::Bool(true)),
            b'f' => self.eat_lit("false").then_some(Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[');
        self.skip_ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{');
        self.skip_ws();
        let mut members = Vec::new();
        if self.eat(b'}') {
            return Some(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Some(Json::Obj(members));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<u32>,
        flags: [u8; 3],
    }

    json_struct!(Demo {
        name,
        count,
        ratio,
        tags,
        flags
    });

    #[test]
    fn struct_round_trip() {
        let d = Demo {
            name: "AES_1 \"quoted\"\n".into(),
            count: 123_456,
            ratio: -0.125,
            tags: vec![1, 2, 3],
            flags: [9, 8, 7],
        };
        let text = to_string_pretty(&d);
        let back: Demo = from_str(&text).expect("parses");
        assert_eq!(back, d);
    }

    #[test]
    fn vec_of_structs_round_trip() {
        let v = vec![
            Demo {
                name: "a".into(),
                count: 0,
                ratio: 1.5,
                tags: vec![],
                flags: [0; 3],
            };
            3
        ];
        let bytes = to_vec_pretty(&v);
        let back: Vec<Demo> = from_slice(&bytes).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_plain_json() {
        let j = parse(r#" {"a": [1, 2.5, -3e2], "b": {"c": null}, "d": "xA"} "#).unwrap();
        assert_eq!(
            j.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("d").unwrap().as_str(), Some("xA"));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(parse("{"), None);
        assert_eq!(parse("[1, 2"), None);
        assert_eq!(parse("{} extra"), None);
        assert_eq!(parse("nul"), None);
        assert_eq!(parse(r#"{"a" 1}"#), None);
    }

    #[test]
    fn float_round_trips_shortest() {
        for v in [
            0.1,
            1.0 / 3.0,
            1e300,
            -2.5e-10,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let text = to_string_pretty(&v);
            let back: f64 = from_str(&text).expect("parses");
            assert_eq!(back, v, "{text}");
        }
        let nan_text = to_string_pretty(&f64::NAN);
        let back: f64 = from_str(&nan_text).expect("parses");
        assert!(back.is_nan());
    }

    #[test]
    fn int_conversion_rejects_fractions() {
        assert_eq!(from_str::<u32>("2.5"), None);
        assert_eq!(from_str::<u32>("-1"), None);
        assert_eq!(from_str::<i64>("-1"), Some(-1));
        assert_eq!(from_str::<u64>("4096"), Some(4096));
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(from_str::<Option<u32>>("null"), Some(None));
        assert_eq!(from_str::<Option<u32>>("7"), Some(Some(7)));
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = Json::Obj(vec![
            ("k".into(), Json::Str("line\nbreak \"q\"".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(true)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = to_string_compact(&v);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(parse(&line), Some(v.clone()));
        // Compact and pretty render the same value.
        assert_eq!(parse(&to_string_pretty(&v)), Some(v));
        assert_eq!(
            line,
            r#"{"k":"line\nbreak \"q\"","a":[1.5,null,true],"empty":{}}"#
        );
    }
}
