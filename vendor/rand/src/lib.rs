//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic per seed. Streams differ from the
//! upstream `rand` crate, which only matters for tests calibrated against
//! specific sequences; the workspace pins its own seeds.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + core::fmt::Debug> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Modulo reduction: the tiny bias over a 64-bit draw is
                // irrelevant for placement/GA sampling.
                let v = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for upstream's ChaCha-based StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl StdRng {
        /// Snapshot of the full xoshiro256++ state, for checkpointing.
        ///
        /// Workspace extension (not part of the upstream `rand` API): the
        /// GDSII-Guard checkpoint format persists per-stream RNG states so a
        /// resumed exploration continues bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`state`](Self::state) snapshot.
        ///
        /// An all-zero state is degenerate for xoshiro (it never leaves
        /// zero); such a snapshot can only come from a corrupted checkpoint,
        /// so it is re-expanded through the seed path instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher-Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Degenerate all-zero state falls back to a working generator.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: i64 = rng.gen_range(-100i64..-50);
            assert!((-100..-50).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle of 50 items should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
